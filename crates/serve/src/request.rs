//! The typed request/reply vocabulary shared by the engine, the wire
//! protocol, the CLI `predict` one-shot and the benches.
//!
//! Encoding follows the workspace's serde_json conventions: externally
//! tagged variants (`{"Variant": {...fields...}}`), unknown object
//! fields ignored on input.

use gpm_core::Utilizations;
use gpm_dvfs::{Objective, ParetoPoint};
use gpm_json::{field, FromJson, Json, JsonError, ToJson};
use gpm_spec::FreqConfig;

/// One prediction query against the active model.
#[derive(Debug, Clone, PartialEq)]
pub enum Request {
    /// Predict average power (Eqs. 5-7) for known utilizations at a
    /// V-F configuration on the fitted grid.
    Power {
        /// Component utilizations measured at the reference
        /// configuration.
        utilizations: Utilizations,
        /// The configuration to predict at.
        config: FreqConfig,
    },
    /// Predict one launch's energy for a named kernel at a
    /// configuration: the kernel is profiled at the reference (the
    /// paper's single-configuration protocol), timed at `config`, and
    /// energy is `P_predicted x T`.
    Energy {
        /// Kernel name from the validation or microbenchmark suite.
        kernel: String,
        /// The configuration to run at.
        config: FreqConfig,
    },
    /// Pick the best configuration for a kernel under an objective —
    /// the governor's first-call decision.
    BestConfig {
        /// Kernel name from the validation or microbenchmark suite.
        kernel: String,
        /// What to optimize.
        objective: Objective,
    },
    /// The kernel's time/energy Pareto frontier, optionally truncated.
    Pareto {
        /// Kernel name from the validation or microbenchmark suite.
        kernel: String,
        /// Keep at most this many points (`0` = all).
        max_points: usize,
    },
}

impl ToJson for Request {
    fn to_json(&self) -> Json {
        let (tag, body) = match self {
            Request::Power {
                utilizations,
                config,
            } => (
                "Power",
                vec![
                    ("utilizations".to_string(), utilizations.to_json()),
                    ("config".to_string(), config.to_json()),
                ],
            ),
            Request::Energy { kernel, config } => (
                "Energy",
                vec![
                    ("kernel".to_string(), kernel.to_json()),
                    ("config".to_string(), config.to_json()),
                ],
            ),
            Request::BestConfig { kernel, objective } => (
                "BestConfig",
                vec![
                    ("kernel".to_string(), kernel.to_json()),
                    ("objective".to_string(), objective.to_json()),
                ],
            ),
            Request::Pareto { kernel, max_points } => (
                "Pareto",
                vec![
                    ("kernel".to_string(), kernel.to_json()),
                    ("max_points".to_string(), max_points.to_json()),
                ],
            ),
        };
        Json::Obj(vec![(tag.to_string(), Json::Obj(body))])
    }
}

/// Pulls a required field out of an externally-tagged payload.
fn need<'a>(fields: &'a [(String, Json)], name: &str) -> Result<&'a Json, JsonError> {
    field(fields, name).ok_or_else(|| JsonError::missing_field(name))
}

impl FromJson for Request {
    fn from_json(json: &Json) -> Result<Self, JsonError> {
        let fields = json
            .as_obj()
            .ok_or_else(|| JsonError::expected("externally-tagged Request object", json))?;
        let (tag, payload) = fields
            .first()
            .ok_or_else(|| JsonError::new("empty object is not a Request"))?;
        let body = payload
            .as_obj()
            .ok_or_else(|| JsonError::expected("Request payload object", payload))?;
        match tag.as_str() {
            "Power" => Ok(Request::Power {
                utilizations: FromJson::from_json(need(body, "utilizations")?)?,
                config: FromJson::from_json(need(body, "config")?)?,
            }),
            "Energy" => Ok(Request::Energy {
                kernel: FromJson::from_json(need(body, "kernel")?)?,
                config: FromJson::from_json(need(body, "config")?)?,
            }),
            "BestConfig" => Ok(Request::BestConfig {
                kernel: FromJson::from_json(need(body, "kernel")?)?,
                objective: FromJson::from_json(need(body, "objective")?)?,
            }),
            "Pareto" => Ok(Request::Pareto {
                kernel: FromJson::from_json(need(body, "kernel")?)?,
                max_points: field(body, "max_points")
                    .map(FromJson::from_json)
                    .transpose()?
                    .unwrap_or(0),
            }),
            other => Err(JsonError::new(format!("unknown Request `{other}`"))),
        }
    }
}

/// A successful prediction result.
#[derive(Debug, Clone, PartialEq)]
pub enum Response {
    /// Answer to [`Request::Power`].
    Power {
        /// Predicted average power in watts.
        watts: f64,
    },
    /// Answer to [`Request::Energy`].
    Energy {
        /// Predicted energy per launch in joules.
        joules: f64,
        /// Measured per-launch runtime in seconds.
        time_s: f64,
        /// Predicted average power in watts.
        power_w: f64,
    },
    /// Answer to [`Request::BestConfig`].
    BestConfig {
        /// The chosen configuration.
        config: FreqConfig,
        /// Predicted average power there, in watts.
        power_w: f64,
        /// Measured per-launch runtime there, in seconds.
        time_s: f64,
        /// Runtime at the reference configuration, in seconds.
        reference_time_s: f64,
    },
    /// Answer to [`Request::Pareto`].
    Pareto {
        /// Frontier points, ascending in runtime.
        points: Vec<ParetoPoint>,
    },
}

impl ToJson for Response {
    fn to_json(&self) -> Json {
        let (tag, body) = match self {
            Response::Power { watts } => ("Power", vec![("watts".to_string(), watts.to_json())]),
            Response::Energy {
                joules,
                time_s,
                power_w,
            } => (
                "Energy",
                vec![
                    ("joules".to_string(), joules.to_json()),
                    ("time_s".to_string(), time_s.to_json()),
                    ("power_w".to_string(), power_w.to_json()),
                ],
            ),
            Response::BestConfig {
                config,
                power_w,
                time_s,
                reference_time_s,
            } => (
                "BestConfig",
                vec![
                    ("config".to_string(), config.to_json()),
                    ("power_w".to_string(), power_w.to_json()),
                    ("time_s".to_string(), time_s.to_json()),
                    ("reference_time_s".to_string(), reference_time_s.to_json()),
                ],
            ),
            Response::Pareto { points } => {
                ("Pareto", vec![("points".to_string(), points.to_json())])
            }
        };
        Json::Obj(vec![(tag.to_string(), Json::Obj(body))])
    }
}

impl FromJson for Response {
    fn from_json(json: &Json) -> Result<Self, JsonError> {
        let fields = json
            .as_obj()
            .ok_or_else(|| JsonError::expected("externally-tagged Response object", json))?;
        let (tag, payload) = fields
            .first()
            .ok_or_else(|| JsonError::new("empty object is not a Response"))?;
        let body = payload
            .as_obj()
            .ok_or_else(|| JsonError::expected("Response payload object", payload))?;
        match tag.as_str() {
            "Power" => Ok(Response::Power {
                watts: FromJson::from_json(need(body, "watts")?)?,
            }),
            "Energy" => Ok(Response::Energy {
                joules: FromJson::from_json(need(body, "joules")?)?,
                time_s: FromJson::from_json(need(body, "time_s")?)?,
                power_w: FromJson::from_json(need(body, "power_w")?)?,
            }),
            "BestConfig" => Ok(Response::BestConfig {
                config: FromJson::from_json(need(body, "config")?)?,
                power_w: FromJson::from_json(need(body, "power_w")?)?,
                time_s: FromJson::from_json(need(body, "time_s")?)?,
                reference_time_s: FromJson::from_json(need(body, "reference_time_s")?)?,
            }),
            "Pareto" => Ok(Response::Pareto {
                points: FromJson::from_json(need(body, "points")?)?,
            }),
            other => Err(JsonError::new(format!("unknown Response `{other}`"))),
        }
    }
}

/// What a caller gets back for each submitted request.
#[derive(Debug, Clone, PartialEq)]
pub enum Reply {
    /// The prediction succeeded.
    Ok(Response),
    /// The request was shed by admission control (bounded queue full or
    /// per-connection in-flight cap reached). Retry later; nothing was
    /// queued.
    Overloaded {
        /// The queue-depth bound that was hit.
        queue_depth: usize,
    },
    /// The request was admitted but failed (unknown kernel, off-grid
    /// configuration, model error, malformed frame, shutdown).
    Error {
        /// Human-readable cause.
        message: String,
    },
    /// The request was admitted but its per-request deadline budget
    /// elapsed before the engine could answer; it was abandoned without
    /// being computed. Unlike [`Reply::Error`] this is a pure capacity
    /// signal — the request itself was well-formed.
    DeadlineExceeded {
        /// The server's configured deadline budget, in milliseconds.
        budget_ms: u64,
    },
}

impl Reply {
    /// `true` for [`Reply::Ok`].
    pub fn is_ok(&self) -> bool {
        matches!(self, Reply::Ok(_))
    }

    /// The successful response, if any.
    pub fn response(&self) -> Option<&Response> {
        match self {
            Reply::Ok(r) => Some(r),
            _ => None,
        }
    }
}

impl ToJson for Reply {
    fn to_json(&self) -> Json {
        match self {
            Reply::Ok(response) => Json::Obj(vec![("Ok".to_string(), response.to_json())]),
            Reply::Overloaded { queue_depth } => Json::Obj(vec![(
                "Overloaded".to_string(),
                Json::Obj(vec![("queue_depth".to_string(), queue_depth.to_json())]),
            )]),
            Reply::Error { message } => Json::Obj(vec![(
                "Error".to_string(),
                Json::Obj(vec![("message".to_string(), message.to_json())]),
            )]),
            Reply::DeadlineExceeded { budget_ms } => Json::Obj(vec![(
                "DeadlineExceeded".to_string(),
                Json::Obj(vec![("budget_ms".to_string(), budget_ms.to_json())]),
            )]),
        }
    }
}

impl FromJson for Reply {
    fn from_json(json: &Json) -> Result<Self, JsonError> {
        let fields = json
            .as_obj()
            .ok_or_else(|| JsonError::expected("externally-tagged Reply object", json))?;
        let (tag, payload) = fields
            .first()
            .ok_or_else(|| JsonError::new("empty object is not a Reply"))?;
        match tag.as_str() {
            "Ok" => Ok(Reply::Ok(FromJson::from_json(payload)?)),
            "Overloaded" => {
                let body = payload
                    .as_obj()
                    .ok_or_else(|| JsonError::expected("Overloaded payload object", payload))?;
                Ok(Reply::Overloaded {
                    queue_depth: FromJson::from_json(need(body, "queue_depth")?)?,
                })
            }
            "Error" => {
                let body = payload
                    .as_obj()
                    .ok_or_else(|| JsonError::expected("Error payload object", payload))?;
                Ok(Reply::Error {
                    message: FromJson::from_json(need(body, "message")?)?,
                })
            }
            "DeadlineExceeded" => {
                let body = payload.as_obj().ok_or_else(|| {
                    JsonError::expected("DeadlineExceeded payload object", payload)
                })?;
                Ok(Reply::DeadlineExceeded {
                    budget_ms: FromJson::from_json(need(body, "budget_ms")?)?,
                })
            }
            other => Err(JsonError::new(format!("unknown Reply `{other}`"))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpm_json::{from_str, to_string};

    fn utils() -> Utilizations {
        Utilizations::from_values([0.2, 0.6, 0.0, 0.1, 0.2, 0.3, 0.5]).unwrap()
    }

    #[test]
    fn requests_round_trip() {
        let requests = [
            Request::Power {
                utilizations: utils(),
                config: FreqConfig::from_mhz(975, 3505),
            },
            Request::Energy {
                kernel: "LBM".to_string(),
                config: FreqConfig::from_mhz(595, 810),
            },
            Request::BestConfig {
                kernel: "BLCKSC".to_string(),
                objective: Objective::MinEnergyWithSlowdown(1.1),
            },
            Request::Pareto {
                kernel: "LBM".to_string(),
                max_points: 4,
            },
        ];
        for request in requests {
            let text = to_string(&request).unwrap();
            let back: Request = from_str(&text).unwrap();
            assert_eq!(request, back, "{text}");
        }
    }

    #[test]
    fn replies_round_trip() {
        let replies = [
            Reply::Ok(Response::Power { watts: 145.25 }),
            Reply::Ok(Response::BestConfig {
                config: FreqConfig::from_mhz(975, 3505),
                power_w: 120.5,
                time_s: 0.25,
                reference_time_s: 0.2,
            }),
            Reply::Overloaded { queue_depth: 64 },
            Reply::Error {
                message: "unknown kernel `DOOM`".to_string(),
            },
            Reply::DeadlineExceeded { budget_ms: 250 },
        ];
        for reply in replies {
            let text = to_string(&reply).unwrap();
            let back: Reply = from_str(&text).unwrap();
            assert_eq!(reply, back, "{text}");
        }
    }

    #[test]
    fn pareto_max_points_defaults_to_all() {
        let req: Request = from_str(r#"{"Pareto":{"kernel":"LBM"}}"#).unwrap();
        assert_eq!(
            req,
            Request::Pareto {
                kernel: "LBM".to_string(),
                max_points: 0
            }
        );
    }

    #[test]
    fn unknown_tags_are_rejected() {
        assert!(from_str::<Request>(r#"{"Divine":{"kernel":"x"}}"#).is_err());
        assert!(from_str::<Reply>(r#"{"Maybe":{}}"#).is_err());
    }
}
