//! The server front end: admission control, micro-batching, clients.
//!
//! Two execution paths share one [`PredictionEngine`]:
//!
//! - **In-process** ([`ServerHandle::spawn`] + [`Client`]) — a single
//!   engine thread drains a bounded queue into micro-batches
//!   ([`ServerConfig::batch_max`]). Admission is decided *before*
//!   enqueueing: at [`ServerConfig::queue_depth`] the request is shed
//!   with a typed [`Reply::Overloaded`] — the server never buffers
//!   unboundedly.
//! - **TCP** ([`ServerHandle::bind`]) — a nonblocking reactor
//!   ([`crate::reactor`]): [`ServerConfig::shards`] event-loop threads
//!   share the listener, own their connections outright, and answer
//!   pure requests in place from the engine's thread-shareable core,
//!   coalescing them for up to [`ServerConfig::coalesce_us`] before
//!   fanning over `gpm-par` ([`ServerConfig::fan_width`]).
//!   Governor-backed requests still funnel through the engine thread,
//!   preserving the sequential-profiling determinism contract. The
//!   per-connection in-flight cap and graceful drain carry over as
//!   reactor state.
//!
//! Shutdown is graceful on both paths: admitted requests are always
//! answered before the threads exit.
//!
//! Two clients are provided. [`Client`] submits in-process (tests,
//! benches, the CLI one-shot). [`TcpClient`] speaks the
//! length-prefixed JSON protocol in [`crate::proto`]; ids are echoed,
//! so it can pipeline.

use crate::engine::PredictionEngine;
use crate::proto;
#[cfg(unix)]
use crate::reactor;
use crate::request::{Reply, Request};
use std::collections::HashMap;
use std::io;
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
#[cfg(unix)]
use std::os::unix::net::UnixStream;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{mpsc, Arc, Mutex};
use std::thread;
use std::time::Duration;

/// Server construction knobs.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Admitted-but-unprocessed requests beyond this are shed (per
    /// reactor shard on the TCP path).
    pub queue_depth: usize,
    /// Largest micro-batch handed to the engine (or flushed by a
    /// reactor shard) at once.
    pub batch_max: usize,
    /// Per-TCP-connection cap on replies not yet written.
    pub conn_inflight: usize,
    /// Stop (gracefully) after serving this many requests — for bounded
    /// CI and bench runs.
    pub max_requests: Option<u64>,
    /// Reactor shards (event-loop threads) for the TCP path; 0 means
    /// one per available core, capped at 16.
    pub shards: usize,
    /// Batch-coalescing window in microseconds: a decoded pure request
    /// waits at most this long for batch-mates (shards flush early the
    /// moment the stream goes quiet).
    pub coalesce_us: u64,
    /// `gpm-par` fan-out width per shard flush (1 = compute on the
    /// shard thread; shards already scale across cores).
    pub fan_width: usize,
    /// Reap a TCP connection after this many milliseconds with no bytes
    /// received and nothing in flight (slow-loris / dead-peer defense).
    /// `0` disables reaping.
    pub idle_timeout_ms: u64,
    /// Per-request deadline budget in milliseconds, measured from
    /// admission: a request still queued when its budget elapses is
    /// answered with [`Reply::DeadlineExceeded`] instead of computed.
    /// `0` disables deadlines.
    pub request_deadline_ms: u64,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            queue_depth: 64,
            batch_max: 16,
            conn_inflight: 32,
            max_requests: None,
            shards: 0,
            coalesce_us: 100,
            fan_width: 1,
            // Generous defaults: only peers that are genuinely stuck
            // (or a server under pathological load) ever see these.
            idle_timeout_ms: 60_000,
            request_deadline_ms: 30_000,
        }
    }
}

/// Lifetime counters reported at shutdown.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ServeStats {
    /// Requests answered (including [`Reply::Error`] and cache hits).
    pub served: u64,
    /// Requests shed by admission control.
    pub shed: u64,
    /// Micro-batches processed (engine batches + reactor flushes).
    pub batches: u64,
}

struct Job {
    id: u64,
    request: Request,
    tx: mpsc::Sender<(u64, Reply)>,
    /// Absolute expiry instant, set at admission from
    /// [`ServerConfig::request_deadline_ms`] (`None` = no deadline).
    deadline: Option<std::time::Instant>,
}

impl Job {
    fn expired(&self, now: std::time::Instant) -> bool {
        self.deadline.is_some_and(|d| now >= d)
    }
}

/// Admission state shared by the engine thread, reactor shards and
/// every in-process client.
pub(crate) struct Shared {
    tx: Mutex<Option<mpsc::Sender<Job>>>,
    depth: AtomicUsize,
    queue_depth: usize,
    running: AtomicBool,
    shed: AtomicU64,
    served: AtomicU64,
    batches: AtomicU64,
    max_requests: Option<u64>,
    /// Per-request deadline budget ([`ServerConfig::request_deadline_ms`]).
    deadline: Option<Duration>,
    /// Write ends poked by [`Shared::close`] so blocked reactor shards
    /// wake up and begin their drain.
    #[cfg(unix)]
    wakers: Mutex<Vec<UnixStream>>,
}

impl Shared {
    /// Queue-admission for one request; `Some(reply)` is a rejection.
    pub(crate) fn submit(
        &self,
        id: u64,
        request: Request,
        tx: mpsc::Sender<(u64, Reply)>,
    ) -> Option<Reply> {
        if !self.running.load(Ordering::SeqCst) {
            return Some(Reply::Error {
                message: "server is shutting down".to_string(),
            });
        }
        if self.depth.load(Ordering::SeqCst) >= self.queue_depth {
            self.note_shed();
            return Some(Reply::Overloaded {
                queue_depth: self.queue_depth,
            });
        }
        let sender = match self.tx.lock().expect("admission lock").as_ref() {
            Some(sender) => sender.clone(),
            None => {
                return Some(Reply::Error {
                    message: "server is shutting down".to_string(),
                })
            }
        };
        let depth = self.depth.fetch_add(1, Ordering::SeqCst) + 1;
        gpm_obs::gauge_set("serve.queue_depth", depth as f64);
        let deadline = self.deadline.map(|d| std::time::Instant::now() + d);
        if sender
            .send(Job {
                id,
                request,
                tx,
                deadline,
            })
            .is_err()
        {
            self.depth.fetch_sub(1, Ordering::SeqCst);
            return Some(Reply::Error {
                message: "server is shutting down".to_string(),
            });
        }
        None
    }

    pub(crate) fn is_running(&self) -> bool {
        self.running.load(Ordering::SeqCst)
    }

    /// Counts one shed request.
    pub(crate) fn note_shed(&self) {
        self.shed.fetch_add(1, Ordering::SeqCst);
        gpm_obs::counter_add("serve.shed", 1);
    }

    /// Counts answered requests (and batches), closing admission once
    /// the `max_requests` budget is spent.
    pub(crate) fn note_served(&self, requests: u64, batches: u64) {
        self.batches.fetch_add(batches, Ordering::SeqCst);
        let total = self.served.fetch_add(requests, Ordering::SeqCst) + requests;
        if self.max_requests.is_some_and(|max| total >= max) {
            self.close();
        }
    }

    /// Stops admission; the engine and the shards drain what was
    /// already admitted.
    pub(crate) fn close(&self) {
        self.running.store(false, Ordering::SeqCst);
        self.tx.lock().expect("admission lock").take();
        #[cfg(unix)]
        {
            use std::io::Write as _;
            for waker in self.wakers.lock().expect("waker list").iter_mut() {
                let _ = waker.write(&[1]);
            }
        }
    }
}

/// A running prediction server. Dropping the handle without calling
/// [`ServerHandle::shutdown`] detaches the worker threads.
pub struct ServerHandle {
    shared: Arc<Shared>,
    engine_thread: thread::JoinHandle<PredictionEngine>,
    shard_threads: Vec<thread::JoinHandle<()>>,
    addr: Option<SocketAddr>,
}

impl std::fmt::Debug for ServerHandle {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ServerHandle")
            .field("addr", &self.addr)
            .field("shards", &self.shard_threads.len())
            .finish_non_exhaustive()
    }
}

/// Resolves [`ServerConfig::shards`] (0 = one per core, capped).
fn effective_shards(requested: usize) -> usize {
    if requested > 0 {
        requested.min(64)
    } else {
        thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)
            .min(16)
    }
}

impl ServerHandle {
    /// Starts the engine thread without a network listener — serve
    /// in-process clients only.
    pub fn spawn(engine: PredictionEngine, config: ServerConfig) -> Self {
        Self::start(engine, config, None).expect("in-process spawn cannot fail on I/O")
    }

    /// Starts the engine thread, the reactor shards and a TCP listener
    /// on `addr` (use port 0 to let the OS pick; see
    /// [`ServerHandle::local_addr`]).
    ///
    /// # Errors
    ///
    /// Fails when the listener cannot bind (and with
    /// [`io::ErrorKind::Unsupported`] on non-Unix platforms, where the
    /// readiness reactor is unavailable).
    pub fn bind(
        engine: PredictionEngine,
        config: ServerConfig,
        addr: impl ToSocketAddrs,
    ) -> io::Result<Self> {
        let listener = TcpListener::bind(addr)?;
        Self::start(engine, config, Some(listener))
    }

    fn start(
        mut engine: PredictionEngine,
        config: ServerConfig,
        listener: Option<TcpListener>,
    ) -> io::Result<Self> {
        #[cfg(not(unix))]
        if listener.is_some() {
            return Err(io::Error::new(
                io::ErrorKind::Unsupported,
                "the gpm-serve TCP reactor requires a Unix platform",
            ));
        }

        // All fallible setup happens before any thread is spawned, so an
        // error here cannot leak a running engine.
        let mut addr = None;
        #[cfg(unix)]
        let mut wake_writers: Vec<UnixStream> = Vec::new();
        #[cfg(unix)]
        let mut wake_readers: Vec<UnixStream> = Vec::new();
        #[cfg(unix)]
        let listener = match listener {
            None => None,
            Some(listener) => {
                addr = Some(listener.local_addr()?);
                listener.set_nonblocking(true)?;
                for _ in 0..effective_shards(config.shards) {
                    let (reader, writer) = UnixStream::pair()?;
                    reader.set_nonblocking(true)?;
                    wake_readers.push(reader);
                    wake_writers.push(writer);
                }
                Some(Arc::new(listener))
            }
        };

        let (jobs_tx, jobs_rx) = mpsc::channel::<Job>();
        let shared = Arc::new(Shared {
            tx: Mutex::new(Some(jobs_tx)),
            depth: AtomicUsize::new(0),
            queue_depth: config.queue_depth,
            running: AtomicBool::new(true),
            shed: AtomicU64::new(0),
            served: AtomicU64::new(0),
            batches: AtomicU64::new(0),
            max_requests: config.max_requests,
            deadline: (config.request_deadline_ms > 0)
                .then(|| Duration::from_millis(config.request_deadline_ms)),
            #[cfg(unix)]
            wakers: Mutex::new(wake_writers),
        });

        #[cfg(unix)]
        let core = engine.core();
        let engine_shared = Arc::clone(&shared);
        let batch_max = config.batch_max.max(1);
        let budget_ms = config.request_deadline_ms;
        let engine_thread = thread::spawn(move || {
            loop {
                let first = match jobs_rx.recv_timeout(Duration::from_millis(25)) {
                    Ok(job) => job,
                    Err(mpsc::RecvTimeoutError::Timeout) => continue,
                    Err(mpsc::RecvTimeoutError::Disconnected) => break,
                };
                let mut batch = vec![first];
                while batch.len() < batch_max {
                    match jobs_rx.try_recv() {
                        Ok(job) => batch.push(job),
                        Err(_) => break,
                    }
                }
                engine_shared.depth.fetch_sub(batch.len(), Ordering::SeqCst);
                // A job whose deadline budget elapsed while queued is
                // answered without being computed: the caller has (or
                // should have) given up, and burning engine time on it
                // only delays the live ones behind it.
                let now = std::time::Instant::now();
                let total = batch.len();
                let (expired, live): (Vec<Job>, Vec<Job>) =
                    batch.into_iter().partition(|j| j.expired(now));
                if !expired.is_empty() {
                    gpm_obs::counter_add("serve.deadline_exceeded", expired.len() as u64);
                }
                for job in expired {
                    let _ = job.tx.send((job.id, Reply::DeadlineExceeded { budget_ms }));
                }
                if !live.is_empty() {
                    let requests: Vec<Request> = live.iter().map(|j| j.request.clone()).collect();
                    let started = std::time::Instant::now();
                    let replies = engine.process_batch(&requests);
                    gpm_obs::histogram_record_duration("serve.batch_service_us", started.elapsed());
                    for (job, reply) in live.into_iter().zip(replies) {
                        // A receiver may have given up; that is its problem.
                        let _ = job.tx.send((job.id, reply));
                    }
                }
                engine_shared.note_served(total as u64, 1);
            }
            engine
        });

        let mut shard_threads = Vec::new();
        #[cfg(unix)]
        if let Some(listener) = listener {
            for waker in wake_readers {
                let cfg = reactor::ShardConfig {
                    queue_depth: config.queue_depth,
                    batch_max,
                    conn_inflight: config.conn_inflight.max(1),
                    coalesce: Duration::from_micros(config.coalesce_us),
                    fan_width: config.fan_width.max(1),
                    idle_timeout: (config.idle_timeout_ms > 0)
                        .then(|| Duration::from_millis(config.idle_timeout_ms)),
                    deadline: (config.request_deadline_ms > 0)
                        .then(|| Duration::from_millis(config.request_deadline_ms)),
                    budget_ms: config.request_deadline_ms,
                };
                let core = Arc::clone(&core);
                let shared = Arc::clone(&shared);
                let listener = Arc::clone(&listener);
                shard_threads.push(thread::spawn(move || {
                    reactor::run_shard(cfg, core, shared, listener, waker);
                }));
            }
        }

        Ok(ServerHandle {
            shared,
            engine_thread,
            shard_threads,
            addr,
        })
    }

    /// The bound address, when started with [`ServerHandle::bind`].
    pub fn local_addr(&self) -> Option<SocketAddr> {
        self.addr
    }

    /// An in-process client for this server.
    pub fn client(&self) -> Client {
        Client {
            shared: Arc::clone(&self.shared),
        }
    }

    /// `false` once the server stopped admitting (shutdown requested or
    /// [`ServerConfig::max_requests`] reached).
    pub fn is_admitting(&self) -> bool {
        self.shared.is_running()
    }

    /// Blocks until the shards and the engine thread exit (admission
    /// closed and queues drained), then returns the engine and the
    /// lifetime counters.
    pub fn join(self) -> (PredictionEngine, ServeStats) {
        for shard in self.shard_threads {
            let _ = shard.join();
        }
        let engine = self.engine_thread.join().expect("engine thread");
        let stats = ServeStats {
            served: self.shared.served.load(Ordering::SeqCst),
            shed: self.shared.shed.load(Ordering::SeqCst),
            batches: self.shared.batches.load(Ordering::SeqCst),
        };
        (engine, stats)
    }

    /// Stops admission, drains every admitted request, and returns the
    /// engine and the lifetime counters.
    pub fn shutdown(self) -> (PredictionEngine, ServeStats) {
        self.shared.close();
        self.join()
    }
}

/// Bounded retry with capped decorrelated-jitter backoff, for
/// [`Client::call_with_retry`]. Opt-in: plain [`Client::call`] never
/// retries.
///
/// The schedule follows the decorrelated-jitter recipe: each delay is
/// drawn uniformly from `[base, 3 * previous]` and clamped to `cap`,
/// which spreads retries out (avoiding thundering herds) while staying
/// bounded. The jitter stream is seeded, so a given policy value always
/// produces the same schedule — the property the deterministic tests
/// rely on.
#[derive(Debug, Clone, PartialEq)]
pub struct BackoffPolicy {
    /// Total call attempts, including the first (minimum 1).
    pub max_attempts: u32,
    /// Base (and minimum) delay in milliseconds.
    pub base_ms: f64,
    /// Upper clamp on any single delay, in milliseconds.
    pub cap_ms: f64,
    /// Seed for the jitter stream; the same seed yields the same
    /// schedule.
    pub seed: u64,
}

impl Default for BackoffPolicy {
    fn default() -> Self {
        BackoffPolicy {
            max_attempts: 4,
            base_ms: 1.0,
            cap_ms: 50.0,
            seed: 0x9E37_79B9_7F4A_7C15,
        }
    }
}

impl BackoffPolicy {
    /// The full delay schedule (`max_attempts - 1` entries), computed
    /// deterministically from the policy fields.
    pub fn delays(&self) -> Vec<Duration> {
        let base = self.base_ms.max(0.0);
        let cap = self.cap_ms.max(base);
        let mut state = self.seed | 1;
        let mut prev = base;
        let mut out = Vec::new();
        for _ in 1..self.max_attempts.max(1) {
            // xorshift64: tiny, seedable, plenty for jitter.
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            let unit = (state >> 11) as f64 / (1u64 << 53) as f64;
            let hi = (prev * 3.0).max(base);
            let ms = (base + unit * (hi - base)).min(cap);
            prev = ms;
            out.push(Duration::from_secs_f64(ms / 1000.0));
        }
        out
    }
}

/// An in-process client: submits straight to the admission queue.
#[derive(Clone)]
pub struct Client {
    shared: Arc<Shared>,
}

impl std::fmt::Debug for Client {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Client").finish_non_exhaustive()
    }
}

impl Client {
    /// Submits one request and blocks for its reply. Shed requests
    /// return [`Reply::Overloaded`] immediately.
    pub fn call(&self, request: Request) -> Reply {
        let (tx, rx) = mpsc::channel();
        if let Some(rejection) = self.shared.submit(0, request, tx) {
            return rejection;
        }
        match rx.recv() {
            Ok((_, reply)) => reply,
            Err(_) => Reply::Error {
                message: "server exited before replying".to_string(),
            },
        }
    }

    /// [`Client::call`] with bounded retry on [`Reply::Overloaded`],
    /// sleeping the policy's jittered backoff between attempts. Any
    /// non-`Overloaded` reply (success *or* error) returns immediately;
    /// exhausting the attempts returns the last `Overloaded`.
    pub fn call_with_retry(&self, request: Request, policy: &BackoffPolicy) -> Reply {
        self.call_with_retry_using(request, policy, thread::sleep)
    }

    /// [`Client::call_with_retry`] with an injected sleeper, so tests
    /// can record the schedule instead of actually waiting.
    pub fn call_with_retry_using(
        &self,
        request: Request,
        policy: &BackoffPolicy,
        mut sleep: impl FnMut(Duration),
    ) -> Reply {
        let mut reply = self.call(request.clone());
        for delay in policy.delays() {
            if !matches!(reply, Reply::Overloaded { .. }) {
                break;
            }
            gpm_obs::counter_add("serve.client_retries", 1);
            sleep(delay);
            reply = self.call(request.clone());
        }
        reply
    }

    /// Submits a slice of requests (admission decided per request) and
    /// blocks until every admitted one is answered. Replies come back
    /// in request order.
    pub fn call_batch(&self, requests: &[Request]) -> Vec<Reply> {
        let (tx, rx) = mpsc::channel();
        let mut replies: Vec<Option<Reply>> = vec![None; requests.len()];
        let mut admitted = 0usize;
        for (i, request) in requests.iter().enumerate() {
            match self.shared.submit(i as u64, request.clone(), tx.clone()) {
                Some(rejection) => replies[i] = Some(rejection),
                None => admitted += 1,
            }
        }
        drop(tx);
        for _ in 0..admitted {
            match rx.recv() {
                Ok((id, reply)) => replies[id as usize] = Some(reply),
                Err(_) => break,
            }
        }
        replies
            .into_iter()
            .map(|r| {
                r.unwrap_or(Reply::Error {
                    message: "server exited before replying".to_string(),
                })
            })
            .collect()
    }
}

/// A TCP client speaking the [`crate::proto`] frame protocol.
#[derive(Debug)]
pub struct TcpClient {
    stream: TcpStream,
    next_id: u64,
    /// Replies that arrived while waiting for a different id.
    pending: HashMap<u64, Reply>,
}

impl TcpClient {
    /// Connects to a server started with [`ServerHandle::bind`].
    ///
    /// # Errors
    ///
    /// Propagates connection failures.
    pub fn connect(addr: impl ToSocketAddrs) -> io::Result<Self> {
        let stream = TcpStream::connect(addr)?;
        // Requests are small; without this Nagle holds them back until
        // the server's delayed ACK (~40ms per round trip).
        stream.set_nodelay(true)?;
        Ok(TcpClient {
            stream,
            next_id: 1,
            pending: HashMap::new(),
        })
    }

    fn send(&mut self, request: &Request) -> io::Result<u64> {
        let id = self.next_id;
        self.next_id += 1;
        proto::write_frame(&mut self.stream, &proto::encode_request(id, request))?;
        Ok(id)
    }

    fn recv_id(&mut self, id: u64) -> io::Result<Reply> {
        if let Some(reply) = self.pending.remove(&id) {
            return Ok(reply);
        }
        loop {
            let frame = proto::read_frame(&mut self.stream)?.ok_or_else(|| {
                io::Error::new(io::ErrorKind::UnexpectedEof, "server closed the connection")
            })?;
            let (got, reply) = proto::decode_reply(&frame)
                .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e.to_string()))?;
            if got == id {
                return Ok(reply);
            }
            self.pending.insert(got, reply);
        }
    }

    /// One synchronous request/reply round trip.
    ///
    /// # Errors
    ///
    /// Propagates socket and framing failures.
    pub fn call(&mut self, request: &Request) -> io::Result<Reply> {
        let id = self.send(request)?;
        self.recv_id(id)
    }

    /// Writes every request before reading any reply (pipelining), then
    /// returns replies in request order.
    ///
    /// # Errors
    ///
    /// Propagates socket and framing failures.
    pub fn pipeline(&mut self, requests: &[Request]) -> io::Result<Vec<Reply>> {
        let ids: Vec<u64> = requests
            .iter()
            .map(|r| self.send(r))
            .collect::<io::Result<_>>()?;
        ids.into_iter().map(|id| self.recv_id(id)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::EngineConfig;
    use crate::request::Response;
    use crate::test_support::fitted_model;
    use gpm_core::Utilizations;
    use gpm_spec::FreqConfig;

    fn power_request() -> Request {
        Request::Power {
            utilizations: Utilizations::from_values([0.2, 0.6, 0.0, 0.1, 0.2, 0.3, 0.5]).unwrap(),
            config: FreqConfig::from_mhz(975, 3505),
        }
    }

    fn engine() -> PredictionEngine {
        PredictionEngine::new(fitted_model(), "test@v1", &EngineConfig::default())
    }

    #[test]
    fn in_process_round_trip_and_graceful_shutdown() {
        let handle = ServerHandle::spawn(engine(), ServerConfig::default());
        let client = handle.client();
        let reply = client.call(power_request());
        assert!(
            matches!(reply, Reply::Ok(Response::Power { watts }) if watts > 0.0),
            "{reply:?}"
        );
        let (engine, stats) = handle.shutdown();
        assert_eq!(stats.served, 1);
        assert_eq!(stats.shed, 0);
        assert!(stats.batches >= 1);
        assert_eq!(engine.stats().requests, 1);

        // Admission after shutdown is a typed error, not a hang.
        let rejection = client.call(power_request());
        assert!(matches!(rejection, Reply::Error { .. }), "{rejection:?}");
    }

    #[test]
    fn zero_depth_queue_sheds_with_a_typed_reply() {
        let config = ServerConfig {
            queue_depth: 0,
            ..ServerConfig::default()
        };
        let handle = ServerHandle::spawn(engine(), config);
        let reply = handle.client().call(power_request());
        assert_eq!(reply, Reply::Overloaded { queue_depth: 0 });
        let (_, stats) = handle.shutdown();
        assert_eq!(stats.shed, 1);
        assert_eq!(stats.served, 0);
    }

    #[test]
    fn max_requests_stops_admission_after_the_budget() {
        let config = ServerConfig {
            max_requests: Some(1),
            ..ServerConfig::default()
        };
        let handle = ServerHandle::spawn(engine(), config);
        let client = handle.client();
        assert!(client.call(power_request()).is_ok());
        // The budget is spent; the server has stopped admitting.
        while handle.is_admitting() {
            thread::sleep(Duration::from_millis(5));
        }
        assert!(matches!(client.call(power_request()), Reply::Error { .. }));
        let (_, stats) = handle.join();
        assert_eq!(stats.served, 1);
    }

    #[test]
    fn backoff_schedules_are_deterministic_and_capped() {
        let policy = BackoffPolicy {
            max_attempts: 8,
            base_ms: 2.0,
            cap_ms: 20.0,
            seed: 7,
        };
        let a = policy.delays();
        let b = policy.delays();
        assert_eq!(a, b, "same policy, same schedule");
        assert_eq!(a.len(), 7);
        for delay in &a {
            let ms = delay.as_secs_f64() * 1000.0;
            assert!((2.0..=20.0).contains(&ms), "{ms} outside [base, cap]");
        }
        // A different seed produces a different schedule.
        let other = BackoffPolicy { seed: 8, ..policy }.delays();
        assert_ne!(a, other);
    }

    #[test]
    fn retry_on_overloaded_follows_the_injected_schedule() {
        // queue_depth 0 sheds everything, so every attempt sees
        // Overloaded and the recorded sleeps must equal the schedule.
        let config = ServerConfig {
            queue_depth: 0,
            ..ServerConfig::default()
        };
        let handle = ServerHandle::spawn(engine(), config);
        let policy = BackoffPolicy {
            max_attempts: 5,
            ..BackoffPolicy::default()
        };
        let mut slept = Vec::new();
        let reply = handle
            .client()
            .call_with_retry_using(power_request(), &policy, |d| slept.push(d));
        assert_eq!(reply, Reply::Overloaded { queue_depth: 0 });
        assert_eq!(slept, policy.delays());
        let (_, stats) = handle.shutdown();
        assert_eq!(stats.shed, 5, "one shed per attempt");
    }

    #[test]
    fn retry_returns_immediately_on_success() {
        let handle = ServerHandle::spawn(engine(), ServerConfig::default());
        let mut slept = Vec::new();
        let reply = handle.client().call_with_retry_using(
            power_request(),
            &BackoffPolicy::default(),
            |d| slept.push(d),
        );
        assert!(reply.is_ok(), "{reply:?}");
        assert!(slept.is_empty(), "no backoff on first-attempt success");
        handle.shutdown();
    }

    #[test]
    fn queued_jobs_past_their_deadline_are_answered_without_compute() {
        let (tx, rx) = mpsc::channel();
        let job = Job {
            id: 7,
            request: power_request(),
            tx,
            deadline: Some(std::time::Instant::now() - Duration::from_millis(1)),
        };
        assert!(job.expired(std::time::Instant::now()));
        let fresh = Job {
            id: 8,
            request: power_request(),
            tx: {
                let (tx, _rx) = mpsc::channel();
                tx
            },
            deadline: Some(std::time::Instant::now() + Duration::from_secs(60)),
        };
        assert!(!fresh.expired(std::time::Instant::now()));
        let unlimited = Job {
            id: 9,
            request: power_request(),
            tx: {
                let (tx, _rx) = mpsc::channel();
                tx
            },
            deadline: None,
        };
        assert!(!unlimited.expired(std::time::Instant::now()));
        drop(rx);
    }

    #[cfg(unix)]
    #[test]
    fn tcp_round_trip_through_the_reactor() {
        let config = ServerConfig {
            shards: 2,
            ..ServerConfig::default()
        };
        let handle = ServerHandle::bind(engine(), config, "127.0.0.1:0").unwrap();
        let addr = handle.local_addr().unwrap();
        let mut client = TcpClient::connect(addr).unwrap();
        let reply = client.call(&power_request()).unwrap();
        assert!(
            matches!(reply, Reply::Ok(Response::Power { watts }) if watts > 0.0),
            "{reply:?}"
        );
        // Pipelined requests all come back, matched by id.
        let batch: Vec<Request> = (0..16).map(|_| power_request()).collect();
        let replies = client.pipeline(&batch).unwrap();
        assert_eq!(replies.len(), 16);
        assert!(replies.iter().all(|r| r == &reply), "{replies:?}");
        drop(client);
        let (_, stats) = handle.shutdown();
        assert_eq!(stats.served, 17);
        assert_eq!(stats.shed, 0);
    }
}
