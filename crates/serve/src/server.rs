//! The server front end: admission control, micro-batching, clients.
//!
//! One engine thread owns the [`PredictionEngine`] and drains a bounded
//! queue into micro-batches ([`ServerConfig::batch_max`]). Admission is
//! decided *before* enqueueing: when the queue is at
//! [`ServerConfig::queue_depth`] the request is shed with a typed
//! [`Reply::Overloaded`] — the server never buffers unboundedly.
//! Shutdown is graceful: admitted requests are always answered before
//! the engine thread exits.
//!
//! Two clients are provided. [`Client`] submits in-process (tests,
//! benches, the CLI one-shot). [`TcpClient`] speaks the
//! length-prefixed JSON protocol in [`crate::proto`]; ids are echoed,
//! so it can pipeline. TCP connections additionally enforce a
//! per-connection in-flight cap, shedding (not queueing) the excess.

use crate::engine::PredictionEngine;
use crate::proto;
use crate::request::{Reply, Request};
use std::collections::HashMap;
use std::io::{self, BufReader, BufWriter};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{mpsc, Arc, Mutex};
use std::thread;
use std::time::Duration;

/// Server construction knobs.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Admitted-but-unprocessed requests beyond this are shed.
    pub queue_depth: usize,
    /// Largest micro-batch handed to the engine at once.
    pub batch_max: usize,
    /// Per-TCP-connection cap on replies not yet written.
    pub conn_inflight: usize,
    /// Stop (gracefully) after serving this many requests — for bounded
    /// CI and bench runs.
    pub max_requests: Option<u64>,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            queue_depth: 64,
            batch_max: 16,
            conn_inflight: 32,
            max_requests: None,
        }
    }
}

/// Lifetime counters reported at shutdown.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ServeStats {
    /// Requests answered by the engine (including [`Reply::Error`]).
    pub served: u64,
    /// Requests shed by admission control.
    pub shed: u64,
    /// Micro-batches processed.
    pub batches: u64,
}

struct Job {
    id: u64,
    request: Request,
    tx: mpsc::Sender<(u64, Reply)>,
}

/// Admission state shared by the engine thread and every client.
struct Shared {
    tx: Mutex<Option<mpsc::Sender<Job>>>,
    depth: AtomicUsize,
    queue_depth: usize,
    running: AtomicBool,
    shed: AtomicU64,
}

impl Shared {
    fn submit(&self, id: u64, request: Request, tx: mpsc::Sender<(u64, Reply)>) -> Option<Reply> {
        if !self.running.load(Ordering::SeqCst) {
            return Some(Reply::Error {
                message: "server is shutting down".to_string(),
            });
        }
        if self.depth.load(Ordering::SeqCst) >= self.queue_depth {
            self.shed.fetch_add(1, Ordering::SeqCst);
            gpm_obs::counter_add("serve.shed", 1);
            return Some(Reply::Overloaded {
                queue_depth: self.queue_depth,
            });
        }
        let sender = match self.tx.lock().expect("admission lock").as_ref() {
            Some(sender) => sender.clone(),
            None => {
                return Some(Reply::Error {
                    message: "server is shutting down".to_string(),
                })
            }
        };
        let depth = self.depth.fetch_add(1, Ordering::SeqCst) + 1;
        gpm_obs::gauge_set("serve.queue_depth", depth as f64);
        if sender.send(Job { id, request, tx }).is_err() {
            self.depth.fetch_sub(1, Ordering::SeqCst);
            return Some(Reply::Error {
                message: "server is shutting down".to_string(),
            });
        }
        None
    }

    /// Stops admission; the engine drains what was already admitted.
    fn close(&self) {
        self.running.store(false, Ordering::SeqCst);
        self.tx.lock().expect("admission lock").take();
    }
}

/// A running prediction server. Dropping the handle without calling
/// [`ServerHandle::shutdown`] detaches the worker threads.
pub struct ServerHandle {
    shared: Arc<Shared>,
    engine_thread: thread::JoinHandle<(PredictionEngine, u64, u64)>,
    listener_thread: Option<thread::JoinHandle<()>>,
    addr: Option<SocketAddr>,
}

impl std::fmt::Debug for ServerHandle {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ServerHandle")
            .field("addr", &self.addr)
            .finish_non_exhaustive()
    }
}

impl ServerHandle {
    /// Starts the engine thread without a network listener — serve
    /// in-process clients only.
    pub fn spawn(engine: PredictionEngine, config: ServerConfig) -> Self {
        Self::start(engine, config, None).expect("in-process spawn cannot fail on I/O")
    }

    /// Starts the engine thread and a TCP listener on `addr` (use port
    /// 0 to let the OS pick; see [`ServerHandle::local_addr`]).
    ///
    /// # Errors
    ///
    /// Fails when the listener cannot bind.
    pub fn bind(
        engine: PredictionEngine,
        config: ServerConfig,
        addr: impl ToSocketAddrs,
    ) -> io::Result<Self> {
        let listener = TcpListener::bind(addr)?;
        Self::start(engine, config, Some(listener))
    }

    fn start(
        mut engine: PredictionEngine,
        config: ServerConfig,
        listener: Option<TcpListener>,
    ) -> io::Result<Self> {
        let (jobs_tx, jobs_rx) = mpsc::channel::<Job>();
        let shared = Arc::new(Shared {
            tx: Mutex::new(Some(jobs_tx)),
            depth: AtomicUsize::new(0),
            queue_depth: config.queue_depth,
            running: AtomicBool::new(true),
            shed: AtomicU64::new(0),
        });

        let engine_shared = Arc::clone(&shared);
        let batch_max = config.batch_max.max(1);
        let max_requests = config.max_requests;
        let engine_thread = thread::spawn(move || {
            let mut served = 0u64;
            let mut batches = 0u64;
            loop {
                let first = match jobs_rx.recv_timeout(Duration::from_millis(25)) {
                    Ok(job) => job,
                    Err(mpsc::RecvTimeoutError::Timeout) => continue,
                    Err(mpsc::RecvTimeoutError::Disconnected) => break,
                };
                let mut batch = vec![first];
                while batch.len() < batch_max {
                    match jobs_rx.try_recv() {
                        Ok(job) => batch.push(job),
                        Err(_) => break,
                    }
                }
                engine_shared.depth.fetch_sub(batch.len(), Ordering::SeqCst);
                let requests: Vec<Request> = batch.iter().map(|j| j.request.clone()).collect();
                let started = std::time::Instant::now();
                let replies = engine.process_batch(&requests);
                gpm_obs::histogram_record_duration("serve.batch_service_us", started.elapsed());
                for (job, reply) in batch.into_iter().zip(replies) {
                    // A receiver may have given up; that is its problem.
                    let _ = job.tx.send((job.id, reply));
                }
                served += requests.len() as u64;
                batches += 1;
                if max_requests.is_some_and(|max| served >= max) {
                    engine_shared.close();
                }
            }
            (engine, served, batches)
        });

        let mut addr = None;
        let listener_thread = match listener {
            None => None,
            Some(listener) => {
                addr = Some(listener.local_addr()?);
                listener.set_nonblocking(true)?;
                let shared = Arc::clone(&shared);
                let conn_inflight = config.conn_inflight.max(1);
                Some(thread::spawn(move || {
                    accept_loop(&listener, &shared, conn_inflight);
                }))
            }
        };

        Ok(ServerHandle {
            shared,
            engine_thread,
            listener_thread,
            addr,
        })
    }

    /// The bound address, when started with [`ServerHandle::bind`].
    pub fn local_addr(&self) -> Option<SocketAddr> {
        self.addr
    }

    /// An in-process client for this server.
    pub fn client(&self) -> Client {
        Client {
            shared: Arc::clone(&self.shared),
        }
    }

    /// `false` once the server stopped admitting (shutdown requested or
    /// [`ServerConfig::max_requests`] reached).
    pub fn is_admitting(&self) -> bool {
        self.shared.running.load(Ordering::SeqCst)
    }

    /// Blocks until the engine thread exits (admission closed and queue
    /// drained), then returns the engine and the lifetime counters.
    pub fn join(self) -> (PredictionEngine, ServeStats) {
        if let Some(listener) = self.listener_thread {
            let _ = listener.join();
        }
        let (engine, served, batches) = self.engine_thread.join().expect("engine thread");
        let stats = ServeStats {
            served,
            shed: self.shared.shed.load(Ordering::SeqCst),
            batches,
        };
        (engine, stats)
    }

    /// Stops admission, drains every admitted request, and returns the
    /// engine and the lifetime counters.
    pub fn shutdown(self) -> (PredictionEngine, ServeStats) {
        self.shared.close();
        self.join()
    }
}

fn accept_loop(listener: &TcpListener, shared: &Arc<Shared>, conn_inflight: usize) {
    let mut connections = Vec::new();
    while shared.running.load(Ordering::SeqCst) {
        match listener.accept() {
            Ok((stream, _)) => {
                let shared = Arc::clone(shared);
                connections.push(thread::spawn(move || {
                    let _ = serve_connection(stream, &shared, conn_inflight);
                }));
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                thread::sleep(Duration::from_millis(10));
            }
            Err(_) => break,
        }
    }
    for conn in connections {
        let _ = conn.join();
    }
}

/// One TCP connection: a reader here, a writer thread, a bounded
/// in-flight window between them.
fn serve_connection(
    stream: TcpStream,
    shared: &Arc<Shared>,
    conn_inflight: usize,
) -> io::Result<()> {
    gpm_obs::counter_add("serve.connections", 1);
    // Frames are small; Nagle + delayed ACK would add ~40ms per reply.
    stream.set_nodelay(true)?;
    stream.set_read_timeout(Some(Duration::from_millis(100)))?;
    let write_half = stream.try_clone()?;
    // Replies not yet written; every message on `out_tx` was preceded
    // by an increment, and the writer decrements per frame written.
    let inflight = Arc::new(AtomicUsize::new(0));
    let (out_tx, out_rx) = mpsc::channel::<(u64, Reply)>();

    let writer_inflight = Arc::clone(&inflight);
    let writer = thread::spawn(move || {
        let mut writer = BufWriter::new(write_half);
        while let Ok((id, reply)) = out_rx.recv() {
            writer_inflight.fetch_sub(1, Ordering::SeqCst);
            if proto::write_frame(&mut writer, &proto::encode_reply(id, &reply)).is_err() {
                break;
            }
        }
    });

    let mut reader = BufReader::new(&stream);
    while shared.running.load(Ordering::SeqCst) {
        let frame = match proto::read_frame(&mut reader) {
            Ok(Some(frame)) => frame,
            Ok(None) => break, // peer closed
            Err(e)
                if e.kind() == io::ErrorKind::WouldBlock || e.kind() == io::ErrorKind::TimedOut =>
            {
                continue
            }
            Err(_) => break,
        };
        let (id, request) = match proto::decode_request(&frame) {
            Ok(decoded) => decoded,
            Err(e) => {
                inflight.fetch_add(1, Ordering::SeqCst);
                let reply = Reply::Error {
                    message: format!("malformed request frame: {e}"),
                };
                if out_tx.send((0, reply)).is_err() {
                    break;
                }
                continue;
            }
        };
        let occupied = inflight.fetch_add(1, Ordering::SeqCst);
        if occupied >= conn_inflight {
            shared.shed.fetch_add(1, Ordering::SeqCst);
            gpm_obs::counter_add("serve.shed", 1);
            let reply = Reply::Overloaded {
                queue_depth: conn_inflight,
            };
            if out_tx.send((id, reply)).is_err() {
                break;
            }
            continue;
        }
        if let Some(rejection) = shared.submit(id, request, out_tx.clone()) {
            if out_tx.send((id, rejection)).is_err() {
                break;
            }
        }
    }
    drop(out_tx);
    let _ = writer.join();
    Ok(())
}

/// An in-process client: submits straight to the admission queue.
#[derive(Clone)]
pub struct Client {
    shared: Arc<Shared>,
}

impl std::fmt::Debug for Client {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Client").finish_non_exhaustive()
    }
}

impl Client {
    /// Submits one request and blocks for its reply. Shed requests
    /// return [`Reply::Overloaded`] immediately.
    pub fn call(&self, request: Request) -> Reply {
        let (tx, rx) = mpsc::channel();
        if let Some(rejection) = self.shared.submit(0, request, tx) {
            return rejection;
        }
        match rx.recv() {
            Ok((_, reply)) => reply,
            Err(_) => Reply::Error {
                message: "server exited before replying".to_string(),
            },
        }
    }

    /// Submits a slice of requests (admission decided per request) and
    /// blocks until every admitted one is answered. Replies come back
    /// in request order.
    pub fn call_batch(&self, requests: &[Request]) -> Vec<Reply> {
        let (tx, rx) = mpsc::channel();
        let mut replies: Vec<Option<Reply>> = vec![None; requests.len()];
        let mut admitted = 0usize;
        for (i, request) in requests.iter().enumerate() {
            match self.shared.submit(i as u64, request.clone(), tx.clone()) {
                Some(rejection) => replies[i] = Some(rejection),
                None => admitted += 1,
            }
        }
        drop(tx);
        for _ in 0..admitted {
            match rx.recv() {
                Ok((id, reply)) => replies[id as usize] = Some(reply),
                Err(_) => break,
            }
        }
        replies
            .into_iter()
            .map(|r| {
                r.unwrap_or(Reply::Error {
                    message: "server exited before replying".to_string(),
                })
            })
            .collect()
    }
}

/// A TCP client speaking the [`crate::proto`] frame protocol.
#[derive(Debug)]
pub struct TcpClient {
    stream: TcpStream,
    next_id: u64,
    /// Replies that arrived while waiting for a different id.
    pending: HashMap<u64, Reply>,
}

impl TcpClient {
    /// Connects to a server started with [`ServerHandle::bind`].
    ///
    /// # Errors
    ///
    /// Propagates connection failures.
    pub fn connect(addr: impl ToSocketAddrs) -> io::Result<Self> {
        let stream = TcpStream::connect(addr)?;
        // Requests are small; without this Nagle holds them back until
        // the server's delayed ACK (~40ms per round trip).
        stream.set_nodelay(true)?;
        Ok(TcpClient {
            stream,
            next_id: 1,
            pending: HashMap::new(),
        })
    }

    fn send(&mut self, request: &Request) -> io::Result<u64> {
        let id = self.next_id;
        self.next_id += 1;
        proto::write_frame(&mut self.stream, &proto::encode_request(id, request))?;
        Ok(id)
    }

    fn recv_id(&mut self, id: u64) -> io::Result<Reply> {
        if let Some(reply) = self.pending.remove(&id) {
            return Ok(reply);
        }
        loop {
            let frame = proto::read_frame(&mut self.stream)?.ok_or_else(|| {
                io::Error::new(io::ErrorKind::UnexpectedEof, "server closed the connection")
            })?;
            let (got, reply) = proto::decode_reply(&frame)
                .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e.to_string()))?;
            if got == id {
                return Ok(reply);
            }
            self.pending.insert(got, reply);
        }
    }

    /// One synchronous request/reply round trip.
    ///
    /// # Errors
    ///
    /// Propagates socket and framing failures.
    pub fn call(&mut self, request: &Request) -> io::Result<Reply> {
        let id = self.send(request)?;
        self.recv_id(id)
    }

    /// Writes every request before reading any reply (pipelining), then
    /// returns replies in request order.
    ///
    /// # Errors
    ///
    /// Propagates socket and framing failures.
    pub fn pipeline(&mut self, requests: &[Request]) -> io::Result<Vec<Reply>> {
        let ids: Vec<u64> = requests
            .iter()
            .map(|r| self.send(r))
            .collect::<io::Result<_>>()?;
        ids.into_iter().map(|id| self.recv_id(id)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::EngineConfig;
    use crate::request::Response;
    use crate::test_support::fitted_model;
    use gpm_core::Utilizations;
    use gpm_spec::FreqConfig;

    fn power_request() -> Request {
        Request::Power {
            utilizations: Utilizations::from_values([0.2, 0.6, 0.0, 0.1, 0.2, 0.3, 0.5]).unwrap(),
            config: FreqConfig::from_mhz(975, 3505),
        }
    }

    fn engine() -> PredictionEngine {
        PredictionEngine::new(fitted_model(), "test@v1", &EngineConfig::default())
    }

    #[test]
    fn in_process_round_trip_and_graceful_shutdown() {
        let handle = ServerHandle::spawn(engine(), ServerConfig::default());
        let client = handle.client();
        let reply = client.call(power_request());
        assert!(
            matches!(reply, Reply::Ok(Response::Power { watts }) if watts > 0.0),
            "{reply:?}"
        );
        let (engine, stats) = handle.shutdown();
        assert_eq!(stats.served, 1);
        assert_eq!(stats.shed, 0);
        assert!(stats.batches >= 1);
        assert_eq!(engine.stats().requests, 1);

        // Admission after shutdown is a typed error, not a hang.
        let rejection = client.call(power_request());
        assert!(matches!(rejection, Reply::Error { .. }), "{rejection:?}");
    }

    #[test]
    fn zero_depth_queue_sheds_with_a_typed_reply() {
        let config = ServerConfig {
            queue_depth: 0,
            ..ServerConfig::default()
        };
        let handle = ServerHandle::spawn(engine(), config);
        let reply = handle.client().call(power_request());
        assert_eq!(reply, Reply::Overloaded { queue_depth: 0 });
        let (_, stats) = handle.shutdown();
        assert_eq!(stats.shed, 1);
        assert_eq!(stats.served, 0);
    }

    #[test]
    fn max_requests_stops_admission_after_the_budget() {
        let config = ServerConfig {
            max_requests: Some(1),
            ..ServerConfig::default()
        };
        let handle = ServerHandle::spawn(engine(), config);
        let client = handle.client();
        assert!(client.call(power_request()).is_ok());
        // The budget is spent; the server has stopped admitting.
        while handle.is_admitting() {
            thread::sleep(Duration::from_millis(5));
        }
        assert!(matches!(client.call(power_request()), Reply::Error { .. }));
        let (_, stats) = handle.join();
        assert_eq!(stats.served, 1);
    }
}
