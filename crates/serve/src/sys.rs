//! Readiness polling without `libc`: the one module in the workspace
//! that talks to the kernel directly.
//!
//! The reactor ([`crate::server`]'s TCP front end) needs a blocking
//! "which of my sockets are ready?" primitive. The approved dependency
//! set has neither `libc` nor `mio`, so this module declares the two
//! syscall entry points it needs itself (`extern "C"` against the C
//! runtime the standard library already links) and wraps them in a safe
//! [`Poller`]:
//!
//! - **Linux** — `epoll` (`epoll_create1`/`epoll_ctl`/`epoll_wait`),
//!   level-triggered. The epoll fd is held as a
//!   [`std::os::fd::OwnedFd`], so lifetime and close are std's problem.
//! - **Other Unix** — POSIX `poll(2)` over a registration table; same
//!   semantics, O(n) per wakeup, fine at per-shard connection counts.
//! - **Non-Unix** — a stub whose constructor fails with
//!   `ErrorKind::Unsupported`; the rest of the crate (in-process
//!   serving, the engine, the registry) works everywhere.
//!
//! All `unsafe` in `gpm-serve` lives here (the crate root is
//! `#![deny(unsafe_code)]` with an allowance for this module only) and
//! is limited to the FFI calls plus adopting the epoll fd.
//!
//! Interest is "always readable, optionally writable": every
//! registered fd reports read readiness and hangup; write readiness is
//! toggled with [`Poller::set_writable`] only while a connection has
//! unflushed output, which keeps level-triggered wakeups quiet.

/// One readiness report from [`Poller::wait`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PollEvent {
    /// The token the fd was registered under.
    pub token: u64,
    /// The fd has bytes to read (or a pending accept).
    pub readable: bool,
    /// The fd can accept more output.
    pub writable: bool,
    /// The peer closed or the fd errored; reads will observe EOF/error.
    pub closed: bool,
}

pub use imp::Poller;

#[cfg(target_os = "linux")]
mod imp {
    use super::PollEvent;
    use std::ffi::c_int;
    use std::io;
    use std::os::fd::{AsRawFd, FromRawFd, OwnedFd, RawFd};
    use std::time::Duration;

    const EPOLL_CLOEXEC: c_int = 0o2000000;
    const EPOLL_CTL_ADD: c_int = 1;
    const EPOLL_CTL_DEL: c_int = 2;
    const EPOLL_CTL_MOD: c_int = 3;
    const EPOLLIN: u32 = 0x001;
    const EPOLLOUT: u32 = 0x004;
    const EPOLLERR: u32 = 0x008;
    const EPOLLHUP: u32 = 0x010;
    const EPOLLRDHUP: u32 = 0x2000;

    /// `struct epoll_event` from the Linux UAPI; packed on x86-64 only,
    /// exactly as the kernel headers declare it.
    #[cfg_attr(target_arch = "x86_64", repr(C, packed))]
    #[cfg_attr(not(target_arch = "x86_64"), repr(C))]
    #[derive(Clone, Copy)]
    struct EpollEvent {
        events: u32,
        data: u64,
    }

    extern "C" {
        fn epoll_create1(flags: c_int) -> c_int;
        fn epoll_ctl(epfd: c_int, op: c_int, fd: c_int, event: *mut EpollEvent) -> c_int;
        fn epoll_wait(
            epfd: c_int,
            events: *mut EpollEvent,
            maxevents: c_int,
            timeout: c_int,
        ) -> c_int;
    }

    /// An epoll instance; see the module docs for the interest model.
    #[derive(Debug)]
    pub struct Poller {
        epfd: OwnedFd,
    }

    impl Poller {
        /// Creates the epoll instance (close-on-exec).
        ///
        /// # Errors
        ///
        /// Propagates `epoll_create1` failure.
        pub fn new() -> io::Result<Self> {
            let fd = unsafe { epoll_create1(EPOLL_CLOEXEC) };
            if fd < 0 {
                return Err(io::Error::last_os_error());
            }
            // The fd is fresh and exclusively ours: adopting it is the
            // entire point of OwnedFd.
            Ok(Poller {
                epfd: unsafe { OwnedFd::from_raw_fd(fd) },
            })
        }

        fn ctl(&self, op: c_int, fd: RawFd, events: u32, token: u64) -> io::Result<()> {
            let mut event = EpollEvent {
                events,
                data: token,
            };
            let rc = unsafe { epoll_ctl(self.epfd.as_raw_fd(), op, fd, &mut event) };
            if rc < 0 {
                return Err(io::Error::last_os_error());
            }
            Ok(())
        }

        fn interest(writable: bool) -> u32 {
            EPOLLIN | EPOLLRDHUP | if writable { EPOLLOUT } else { 0 }
        }

        /// Registers `fd` under `token`, read-interested (plus write
        /// interest when `writable`).
        ///
        /// # Errors
        ///
        /// Propagates `epoll_ctl` failure.
        pub fn register(&self, fd: RawFd, token: u64, writable: bool) -> io::Result<()> {
            self.ctl(EPOLL_CTL_ADD, fd, Self::interest(writable), token)
        }

        /// Toggles write interest for an already-registered fd.
        ///
        /// # Errors
        ///
        /// Propagates `epoll_ctl` failure.
        pub fn set_writable(&self, fd: RawFd, token: u64, writable: bool) -> io::Result<()> {
            self.ctl(EPOLL_CTL_MOD, fd, Self::interest(writable), token)
        }

        /// Removes an fd from the interest set.
        ///
        /// # Errors
        ///
        /// Propagates `epoll_ctl` failure.
        pub fn deregister(&self, fd: RawFd) -> io::Result<()> {
            self.ctl(EPOLL_CTL_DEL, fd, 0, 0)
        }

        /// Blocks until at least one registered fd is ready or `timeout`
        /// elapses (`None` = wait forever; sub-millisecond timeouts
        /// round down to an immediate poll). Clears and refills
        /// `events`; returns the event count.
        ///
        /// # Errors
        ///
        /// Propagates `epoll_wait` failure (`EINTR` is retried).
        pub fn wait(
            &self,
            events: &mut Vec<PollEvent>,
            timeout: Option<Duration>,
        ) -> io::Result<usize> {
            events.clear();
            let timeout_ms: c_int = match timeout {
                None => -1,
                Some(d) => d.as_millis().min(c_int::MAX as u128) as c_int,
            };
            let mut buf = [EpollEvent { events: 0, data: 0 }; 128];
            let n = loop {
                let rc = unsafe {
                    epoll_wait(
                        self.epfd.as_raw_fd(),
                        buf.as_mut_ptr(),
                        buf.len() as c_int,
                        timeout_ms,
                    )
                };
                if rc >= 0 {
                    break rc as usize;
                }
                let err = io::Error::last_os_error();
                if err.kind() != io::ErrorKind::Interrupted {
                    return Err(err);
                }
            };
            for ev in &buf[..n] {
                // Copy out of the (possibly packed) struct before use.
                let (bits, data) = (ev.events, ev.data);
                events.push(PollEvent {
                    token: data,
                    readable: bits & (EPOLLIN | EPOLLRDHUP) != 0,
                    writable: bits & EPOLLOUT != 0,
                    closed: bits & (EPOLLERR | EPOLLHUP) != 0,
                });
            }
            Ok(n)
        }
    }
}

#[cfg(all(unix, not(target_os = "linux")))]
mod imp {
    use super::PollEvent;
    use std::ffi::{c_int, c_short};
    use std::io;
    use std::os::fd::RawFd;
    use std::sync::Mutex;
    use std::time::Duration;

    const POLLIN: c_short = 0x001;
    const POLLOUT: c_short = 0x004;
    const POLLERR: c_short = 0x008;
    const POLLHUP: c_short = 0x010;

    #[repr(C)]
    struct Pollfd {
        fd: c_int,
        events: c_short,
        revents: c_short,
    }

    extern "C" {
        // `nfds_t` is `unsigned int` on the BSD family; this fallback
        // never runs on Linux (where it is `unsigned long`).
        fn poll(fds: *mut Pollfd, nfds: std::ffi::c_uint, timeout: c_int) -> c_int;
    }

    /// POSIX `poll(2)` fallback; same contract as the Linux poller.
    #[derive(Debug)]
    pub struct Poller {
        slots: Mutex<Vec<(RawFd, u64, bool)>>,
    }

    impl Poller {
        /// Creates an empty registration table.
        ///
        /// # Errors
        ///
        /// Infallible on this backend (signature matches the others).
        pub fn new() -> io::Result<Self> {
            Ok(Poller {
                slots: Mutex::new(Vec::new()),
            })
        }

        /// Registers `fd` under `token`; see the Linux poller.
        ///
        /// # Errors
        ///
        /// Infallible on this backend.
        pub fn register(&self, fd: RawFd, token: u64, writable: bool) -> io::Result<()> {
            self.slots
                .lock()
                .expect("poller table")
                .push((fd, token, writable));
            Ok(())
        }

        /// Toggles write interest; see the Linux poller.
        ///
        /// # Errors
        ///
        /// Fails with `NotFound` for an unregistered fd.
        pub fn set_writable(&self, fd: RawFd, token: u64, writable: bool) -> io::Result<()> {
            let mut slots = self.slots.lock().expect("poller table");
            for slot in slots.iter_mut() {
                if slot.0 == fd {
                    *slot = (fd, token, writable);
                    return Ok(());
                }
            }
            Err(io::Error::new(io::ErrorKind::NotFound, "fd not registered"))
        }

        /// Removes an fd; see the Linux poller.
        ///
        /// # Errors
        ///
        /// Infallible on this backend.
        pub fn deregister(&self, fd: RawFd) -> io::Result<()> {
            self.slots
                .lock()
                .expect("poller table")
                .retain(|s| s.0 != fd);
            Ok(())
        }

        /// Polls the registered set; see the Linux poller.
        ///
        /// # Errors
        ///
        /// Propagates `poll` failure (`EINTR` is retried).
        pub fn wait(
            &self,
            events: &mut Vec<PollEvent>,
            timeout: Option<Duration>,
        ) -> io::Result<usize> {
            events.clear();
            let mut fds: Vec<Pollfd> = {
                let slots = self.slots.lock().expect("poller table");
                slots
                    .iter()
                    .map(|&(fd, _, writable)| Pollfd {
                        fd,
                        events: POLLIN | if writable { POLLOUT } else { 0 },
                        revents: 0,
                    })
                    .collect()
            };
            let timeout_ms: c_int = match timeout {
                None => -1,
                Some(d) => d.as_millis().min(c_int::MAX as u128) as c_int,
            };
            loop {
                let rc =
                    unsafe { poll(fds.as_mut_ptr(), fds.len() as std::ffi::c_uint, timeout_ms) };
                if rc >= 0 {
                    break;
                }
                let err = io::Error::last_os_error();
                if err.kind() != io::ErrorKind::Interrupted {
                    return Err(err);
                }
            }
            let slots = self.slots.lock().expect("poller table");
            for (pollfd, &(_, token, _)) in fds.iter().zip(slots.iter()) {
                if pollfd.revents == 0 {
                    continue;
                }
                events.push(PollEvent {
                    token,
                    readable: pollfd.revents & POLLIN != 0,
                    writable: pollfd.revents & POLLOUT != 0,
                    closed: pollfd.revents & (POLLERR | POLLHUP) != 0,
                });
            }
            Ok(events.len())
        }
    }
}

#[cfg(not(unix))]
mod imp {
    use super::PollEvent;
    use std::io;
    use std::time::Duration;

    /// Stub backend: readiness polling is Unix-only; constructing one
    /// fails, so `ServerHandle::bind` reports `Unsupported` instead of
    /// failing to compile the workspace.
    #[derive(Debug)]
    pub struct Poller {
        never: std::convert::Infallible,
    }

    impl Poller {
        /// Always fails on non-Unix platforms.
        ///
        /// # Errors
        ///
        /// `ErrorKind::Unsupported`, unconditionally.
        pub fn new() -> io::Result<Self> {
            Err(io::Error::new(
                io::ErrorKind::Unsupported,
                "the gpm-serve reactor requires a Unix platform",
            ))
        }

        /// Unreachable (a stub `Poller` cannot be constructed).
        ///
        /// # Errors
        ///
        /// Unreachable.
        pub fn register(&self, _fd: i32, _token: u64, _writable: bool) -> io::Result<()> {
            match self.never {}
        }

        /// Unreachable (a stub `Poller` cannot be constructed).
        ///
        /// # Errors
        ///
        /// Unreachable.
        pub fn set_writable(&self, _fd: i32, _token: u64, _writable: bool) -> io::Result<()> {
            match self.never {}
        }

        /// Unreachable (a stub `Poller` cannot be constructed).
        ///
        /// # Errors
        ///
        /// Unreachable.
        pub fn deregister(&self, _fd: i32) -> io::Result<()> {
            match self.never {}
        }

        /// Unreachable (a stub `Poller` cannot be constructed).
        ///
        /// # Errors
        ///
        /// Unreachable.
        pub fn wait(
            &self,
            _events: &mut Vec<PollEvent>,
            _timeout: Option<Duration>,
        ) -> io::Result<usize> {
            match self.never {}
        }
    }
}

#[cfg(all(test, unix))]
mod tests {
    use super::*;
    use std::io::{Read, Write};
    use std::os::fd::AsRawFd;
    use std::os::unix::net::UnixStream;
    use std::time::Duration;

    #[test]
    fn readiness_tracks_writes_and_hangup() {
        let poller = Poller::new().unwrap();
        let (mut a, mut b) = UnixStream::pair().unwrap();
        b.set_nonblocking(true).unwrap();
        poller.register(b.as_raw_fd(), 7, false).unwrap();

        // Nothing pending: a zero timeout returns promptly with no events.
        let mut events = Vec::new();
        poller.wait(&mut events, Some(Duration::ZERO)).unwrap();
        assert!(events.iter().all(|e| e.token != 7 || !e.readable));

        a.write_all(b"ping").unwrap();
        poller
            .wait(&mut events, Some(Duration::from_secs(5)))
            .unwrap();
        let ev = events
            .iter()
            .find(|e| e.token == 7)
            .expect("readable event");
        assert!(ev.readable);
        let mut buf = [0u8; 8];
        assert_eq!(b.read(&mut buf).unwrap(), 4);

        // Peer hangup surfaces as readable (EOF) and/or closed.
        drop(a);
        poller
            .wait(&mut events, Some(Duration::from_secs(5)))
            .unwrap();
        let ev = events.iter().find(|e| e.token == 7).expect("hangup event");
        assert!(ev.readable || ev.closed);
    }

    #[test]
    fn write_interest_is_toggleable() {
        let poller = Poller::new().unwrap();
        let (_a, b) = UnixStream::pair().unwrap();
        b.set_nonblocking(true).unwrap();
        poller.register(b.as_raw_fd(), 3, true).unwrap();
        let mut events = Vec::new();
        poller
            .wait(&mut events, Some(Duration::from_secs(5)))
            .unwrap();
        assert!(
            events.iter().any(|e| e.token == 3 && e.writable),
            "an idle socket is write-ready: {events:?}"
        );
        poller.set_writable(b.as_raw_fd(), 3, false).unwrap();
        poller.wait(&mut events, Some(Duration::ZERO)).unwrap();
        assert!(
            events.iter().all(|e| e.token != 3 || !e.writable),
            "write interest cleared: {events:?}"
        );
        poller.deregister(b.as_raw_fd()).unwrap();
        poller.wait(&mut events, Some(Duration::ZERO)).unwrap();
        assert!(events.iter().all(|e| e.token != 3));
    }
}
