//! Shared test fixture: fit the reference model once per test binary.

use gpm_core::{Estimator, PowerModel};
use gpm_profiler::Profiler;
use gpm_sim::SimulatedGpu;
use gpm_workloads::microbenchmark_suite;
use std::sync::OnceLock;

/// A model fitted on the GTX Titan X microbenchmark suite (seed 42),
/// computed once and cloned — fitting is the expensive part of every
/// serve test.
pub fn fitted_model() -> PowerModel {
    static MODEL: OnceLock<PowerModel> = OnceLock::new();
    MODEL
        .get_or_init(|| {
            let spec = gpm_spec::devices::gtx_titan_x();
            let mut gpu = SimulatedGpu::new(spec.clone(), 42);
            let training = Profiler::with_repeats(&mut gpu, 1)
                .profile_suite(&microbenchmark_suite(&spec))
                .unwrap();
            Estimator::new().fit(&training).unwrap()
        })
        .clone()
}
