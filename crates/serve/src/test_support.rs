//! Shared test plumbing for the serve crate's integration suite.
//!
//! Two things live here, both `#[doc(hidden)]` because they are test
//! infrastructure rather than API surface:
//!
//! - [`fitted_model`] — the reference model, fitted once per test
//!   binary and cloned.
//! - [`ChaosProxy`] — a socket-level fault injector that sits between a
//!   test client and the real TCP server, shaping the client-to-server
//!   byte stream (trickled bytes, partial writes, mid-frame resets) so
//!   chaos tests can exercise the reactor's framing, idle-reaping and
//!   deadline paths with real kernel sockets.

use gpm_core::{Estimator, PowerModel};
use gpm_profiler::Profiler;
use gpm_sim::SimulatedGpu;
use gpm_workloads::microbenchmark_suite;
use std::io::{Read, Write};
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread;
use std::time::Duration;

/// A model fitted on the GTX Titan X microbenchmark suite (seed 42),
/// computed once and cloned — fitting is the expensive part of every
/// serve test.
pub fn fitted_model() -> PowerModel {
    static MODEL: std::sync::OnceLock<PowerModel> = std::sync::OnceLock::new();
    MODEL
        .get_or_init(|| {
            let spec = gpm_spec::devices::gtx_titan_x();
            let mut gpu = SimulatedGpu::new(spec.clone(), 42);
            let training = Profiler::with_repeats(&mut gpu, 1)
                .profile_suite(&microbenchmark_suite(&spec))
                .unwrap();
            Estimator::new().fit(&training).unwrap()
        })
        .clone()
}

/// How the proxy mangles the client-to-server byte stream. Replies from
/// the server always pass through unshaped, so a test can still decode
/// whatever the server managed to say.
#[derive(Debug, Clone, Copy)]
pub enum ChaosMode {
    /// Forward bytes verbatim (control case).
    Passthrough,
    /// Trickle the stream in `chunk`-byte slices with `delay` between
    /// them — a slow sender whose frames arrive in arbitrary splits.
    DelayBytes {
        /// Bytes forwarded per slice.
        chunk: usize,
        /// Pause between slices.
        delay: Duration,
    },
    /// Forward exactly `bytes` bytes, then sever both directions
    /// abruptly — the server observes a mid-frame disconnect.
    ResetAfter {
        /// Client bytes forwarded before the cut.
        bytes: usize,
    },
}

/// A thread-per-connection TCP forwarder with deterministic stream
/// shaping, for chaos-testing the reactor over real sockets.
///
/// Accepts on an ephemeral local port, dials `upstream` once per
/// accepted connection, and pumps bytes in both directions until either
/// side hangs up (or the mode cuts the cord).
#[derive(Debug)]
pub struct ChaosProxy {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    accept_thread: Option<thread::JoinHandle<()>>,
}

impl ChaosProxy {
    /// Starts a proxy in front of `upstream` with the given shaping
    /// mode applied to every accepted connection.
    pub fn spawn(upstream: SocketAddr, mode: ChaosMode) -> ChaosProxy {
        let listener = TcpListener::bind("127.0.0.1:0").expect("bind chaos proxy");
        let addr = listener.local_addr().expect("proxy local addr");
        listener
            .set_nonblocking(true)
            .expect("nonblocking proxy listener");
        let stop = Arc::new(AtomicBool::new(false));
        let stop_flag = Arc::clone(&stop);
        let accept_thread = thread::spawn(move || {
            while !stop_flag.load(Ordering::Relaxed) {
                match listener.accept() {
                    Ok((client, _)) => match TcpStream::connect(upstream) {
                        Ok(server) => pump_connection(client, server, mode),
                        Err(_) => drop(client),
                    },
                    Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                        thread::sleep(Duration::from_millis(2));
                    }
                    Err(_) => break,
                }
            }
        });
        ChaosProxy {
            addr,
            stop,
            accept_thread: Some(accept_thread),
        }
    }

    /// The address test clients should dial instead of the server's.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }
}

impl Drop for ChaosProxy {
    fn drop(&mut self) {
        self.stop.store(true, Ordering::Relaxed);
        if let Some(handle) = self.accept_thread.take() {
            let _ = handle.join();
        }
    }
}

/// Wires up one proxied connection: the client-to-server direction is
/// shaped by `mode` on a dedicated thread; replies stream back
/// unshaped on another. Threads are detached — they exit on EOF when
/// either endpoint closes, which every test does.
fn pump_connection(client: TcpStream, server: TcpStream, mode: ChaosMode) {
    client.set_nodelay(true).ok();
    server.set_nodelay(true).ok();
    let client_rd = client.try_clone().expect("clone client stream");
    let server_wr = server.try_clone().expect("clone server stream");
    thread::spawn(move || shape_upstream(client_rd, server_wr, mode));
    thread::spawn(move || copy_until_eof(server, client));
}

/// Client → server: apply the shaping mode, then shut the write side so
/// the server sees a clean EOF when the client is done.
fn shape_upstream(mut from: TcpStream, mut to: TcpStream, mode: ChaosMode) {
    let mut forwarded = 0usize;
    let mut buf = [0u8; 4096];
    loop {
        let n = match from.read(&mut buf) {
            Ok(0) | Err(_) => break,
            Ok(n) => n,
        };
        let mut chunk_bytes = &buf[..n];
        match mode {
            ChaosMode::Passthrough => {
                if to.write_all(chunk_bytes).is_err() {
                    break;
                }
            }
            ChaosMode::DelayBytes { chunk, delay } => {
                let step = chunk.max(1);
                while !chunk_bytes.is_empty() {
                    let take = step.min(chunk_bytes.len());
                    if to.write_all(&chunk_bytes[..take]).is_err() || to.flush().is_err() {
                        return;
                    }
                    chunk_bytes = &chunk_bytes[take..];
                    thread::sleep(delay);
                }
            }
            ChaosMode::ResetAfter { bytes } => {
                let remaining = bytes.saturating_sub(forwarded);
                let take = remaining.min(chunk_bytes.len());
                if take > 0 && to.write_all(&chunk_bytes[..take]).is_err() {
                    break;
                }
                forwarded += take;
                if forwarded >= bytes {
                    // Sever both directions: the server observes a
                    // mid-frame disconnect, the client a dead socket.
                    to.shutdown(Shutdown::Both).ok();
                    from.shutdown(Shutdown::Both).ok();
                    return;
                }
            }
        }
        forwarded += n;
    }
    to.shutdown(Shutdown::Write).ok();
}

/// Server → client: verbatim copy until EOF.
fn copy_until_eof(mut from: TcpStream, mut to: TcpStream) {
    let mut buf = [0u8; 4096];
    loop {
        match from.read(&mut buf) {
            Ok(0) | Err(_) => break,
            Ok(n) => {
                if to.write_all(&buf[..n]).is_err() {
                    break;
                }
            }
        }
    }
    to.shutdown(Shutdown::Write).ok();
}
