//! CUPTI-like raw event emission (Table I).
//!
//! Given a kernel execution, this layer produces the per-launch raw event
//! counts a profiler would read on real hardware: sector-granular L2/DRAM
//! traffic split over subpartitions, 128-byte shared-memory transactions,
//! warp counts on the (indistinguishable) INT/SP pipelines plus the
//! per-type instruction counters that Eq. 10 uses to split them, and
//! `active_cycles`. Counts carry per-device multiplicative noise — the
//! mechanism behind the paper's observation that the Tesla K40c's
//! undisclosed events are less reliable.

use crate::perf::Execution;
use crate::rng::{normal, SimRng};
use crate::GroundTruth;
use gpm_spec::events::{EventId, EventTable, Metric, SECTOR_BYTES, SHARED_TRANSACTION_BYTES};
use gpm_spec::{Component, DeviceSpec, FreqConfig};
use gpm_workloads::KernelDesc;
use std::collections::BTreeMap;

/// Emits the raw Table I events for one kernel launch.
///
/// Each metric total is distorted by the device's fixed per-metric bias
/// (see [`GroundTruth::event_bias`]) and by run-to-run multiplicative
/// jitter of relative standard deviation `GroundTruth::event_noise_sd`,
/// then split across its raw events. Returned counts are keyed by
/// [`EventId`] exactly as a CUPTI reader would deliver them.
pub fn emit_events(
    spec: &DeviceSpec,
    kernel: &KernelDesc,
    exec: &Execution,
    config: FreqConfig,
    truth: &GroundTruth,
    rng: &mut SimRng,
) -> BTreeMap<EventId, u64> {
    let table = EventTable::for_architecture(spec.architecture());
    let mut counts = BTreeMap::new();
    let noisy = |metric: Metric, value: f64, rng: &mut SimRng| -> f64 {
        // Cycle counting is reliable on every device; only the activity
        // counters inherit the device's event inaccuracy.
        let sd = if metric == Metric::ActiveCycles {
            truth.event_noise_sd.min(0.002)
        } else {
            truth.event_noise_sd
        };
        (value * truth.bias_for(metric) * normal(rng, 1.0, sd)).max(0.0)
    };

    // ACycles: cycles with at least one active warp. The roofline model
    // keeps the SMs busy for the whole launch.
    let active_cycles = exec.duration_s * config.core.as_hz();
    split_metric(
        &table,
        Metric::ActiveCycles,
        noisy(Metric::ActiveCycles, active_cycles, rng),
        &mut counts,
    );

    // Cross-talk: each counter family picks up a fraction of *other*
    // components' activity, expressed in its own units via the capacity
    // of its component over the launch window (utilization-space leak).
    let xt = truth.event_crosstalk;
    let t = exec.duration_s;
    let u = &exec.utilizations;
    let u_of = |c: Component| u[c.index()];
    let intsp_capacity = spec
        .peak_warp_throughput(Component::Sp, config.core)
        .expect("sp is a compute unit")
        * t;
    let dp_capacity = spec
        .peak_warp_throughput(Component::Dp, config.core)
        .expect("dp is a compute unit")
        * t;
    let sf_capacity = spec
        .peak_warp_throughput(Component::Sf, config.core)
        .expect("sf is a compute unit")
        * t;
    let l2_capacity = config.core.as_hz() * truth.l2_bytes_per_cycle * t;
    let dram_capacity = spec.peak_dram_bandwidth(config.mem) * t;
    let shared_capacity = spec.peak_shared_bandwidth(config.core) * t;

    // Memory hierarchy: bytes -> sectors / transactions, read/write split.
    let l2_bytes = kernel.bytes(Component::L2Cache)
        + xt * 0.5 * (u_of(Component::SharedMem) + u_of(Component::Dram)) * l2_capacity;
    let l2_rf = kernel.read_fraction(Component::L2Cache);
    split_metric(
        &table,
        Metric::L2ReadSectors,
        noisy(
            Metric::L2ReadSectors,
            l2_bytes * l2_rf / f64::from(SECTOR_BYTES),
            rng,
        ),
        &mut counts,
    );
    split_metric(
        &table,
        Metric::L2WriteSectors,
        noisy(
            Metric::L2WriteSectors,
            l2_bytes * (1.0 - l2_rf) / f64::from(SECTOR_BYTES),
            rng,
        ),
        &mut counts,
    );

    let dram_bytes = kernel.bytes(Component::Dram) + xt * u_of(Component::L2Cache) * dram_capacity;
    let dram_rf = kernel.read_fraction(Component::Dram);
    split_metric(
        &table,
        Metric::DramReadSectors,
        noisy(
            Metric::DramReadSectors,
            dram_bytes * dram_rf / f64::from(SECTOR_BYTES),
            rng,
        ),
        &mut counts,
    );
    split_metric(
        &table,
        Metric::DramWriteSectors,
        noisy(
            Metric::DramWriteSectors,
            dram_bytes * (1.0 - dram_rf) / f64::from(SECTOR_BYTES),
            rng,
        ),
        &mut counts,
    );

    let sh_bytes =
        kernel.bytes(Component::SharedMem) + xt * 0.5 * u_of(Component::L2Cache) * shared_capacity;
    let sh_lf = kernel.read_fraction(Component::SharedMem);
    split_metric(
        &table,
        Metric::SharedLoadTrans,
        noisy(
            Metric::SharedLoadTrans,
            sh_bytes * sh_lf / f64::from(SHARED_TRANSACTION_BYTES),
            rng,
        ),
        &mut counts,
    );
    split_metric(
        &table,
        Metric::SharedStoreTrans,
        noisy(
            Metric::SharedStoreTrans,
            sh_bytes * (1.0 - sh_lf) / f64::from(SHARED_TRANSACTION_BYTES),
            rng,
        ),
        &mut counts,
    );

    // Warp counters: INT and SP are one combined event set (Table I); the
    // per-type instruction counters allow the Eq. 10 split.
    let w_int = kernel.warp_insts(Component::Int);
    let w_sp = kernel.warp_insts(Component::Sp);
    let warp_size = f64::from(spec.warp_size());
    let w_intsp =
        w_int + w_sp + xt * 0.5 * (u_of(Component::Dp) + u_of(Component::Sf)) * intsp_capacity;
    let w_dp = kernel.warp_insts(Component::Dp)
        + xt * 0.5 * (u_of(Component::Int) + u_of(Component::Sp)) * dp_capacity;
    let w_sf = kernel.warp_insts(Component::Sf)
        + xt * 0.5 * (u_of(Component::Int) + u_of(Component::Sp)) * sf_capacity;
    // Cross-talk also blurs the INT/SP instruction split of Eq. 10.
    let inst_int = (w_int + xt * 0.5 * w_sp) * warp_size;
    let inst_sp = (w_sp + xt * 0.5 * w_int) * warp_size;
    split_metric(
        &table,
        Metric::WarpsIntSp,
        noisy(Metric::WarpsIntSp, w_intsp, rng),
        &mut counts,
    );
    split_metric(
        &table,
        Metric::WarpsDp,
        noisy(Metric::WarpsDp, w_dp, rng),
        &mut counts,
    );
    split_metric(
        &table,
        Metric::WarpsSf,
        noisy(Metric::WarpsSf, w_sf, rng),
        &mut counts,
    );
    split_metric(
        &table,
        Metric::InstInt,
        noisy(Metric::InstInt, inst_int, rng),
        &mut counts,
    );
    split_metric(
        &table,
        Metric::InstSp,
        noisy(Metric::InstSp, inst_sp, rng),
        &mut counts,
    );

    counts
}

/// Splits a metric total across its raw events (subpartitions see roughly
/// even shares on streaming workloads) and records them.
fn split_metric(
    table: &EventTable,
    metric: Metric,
    total: f64,
    counts: &mut BTreeMap<EventId, u64>,
) {
    let events = table.events(metric);
    debug_assert!(!events.is_empty(), "every metric has events");
    let share = total / events.len() as f64;
    for &ev in events {
        counts.insert(ev, share.round().max(0.0) as u64);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::PerfModel;
    use gpm_spec::devices;
    use gpm_workloads::microbenchmark_suite;

    fn emit_for(name: &str, noise: f64, seed: u64) -> (DeviceSpec, BTreeMap<EventId, u64>) {
        let spec = devices::gtx_titan_x();
        let suite = microbenchmark_suite(&spec);
        let k = suite.iter().find(|k| k.name() == name).unwrap();
        let perf = PerfModel::new(spec.clone(), 640.0);
        let cfg = spec.default_config();
        let exec = perf.execute(k, cfg);
        let mut rng = SimRng::seed_from_u64(seed);
        let mut truth = crate::GroundTruth::nominal(spec.architecture());
        truth.event_noise_sd = noise;
        truth.event_crosstalk = 0.0;
        let counts = emit_events(&spec, k, &exec, cfg, &truth, &mut rng);
        (spec, counts)
    }

    #[test]
    fn all_table1_events_are_present() {
        let (spec, counts) = emit_for("SP_n64", 0.0, 1);
        let table = EventTable::for_architecture(spec.architecture());
        for ev in table.all_events() {
            assert!(counts.contains_key(&ev), "missing {ev}");
        }
    }

    #[test]
    fn noiseless_dram_sectors_reconstruct_bytes() {
        let (spec, counts) = emit_for("DRAM_n0_w4", 0.0, 1);
        let table = EventTable::for_architecture(spec.architecture());
        let total_sectors: u64 = table
            .events(Metric::DramReadSectors)
            .iter()
            .chain(table.events(Metric::DramWriteSectors))
            .map(|ev| counts[ev])
            .sum();
        let suite = microbenchmark_suite(&spec);
        let k = suite.iter().find(|k| k.name() == "DRAM_n0_w4").unwrap();
        let bytes = total_sectors as f64 * f64::from(SECTOR_BYTES);
        let rel = (bytes - k.bytes(Component::Dram)).abs() / k.bytes(Component::Dram);
        assert!(rel < 1e-6, "rel err {rel}");
    }

    #[test]
    fn int_sp_events_are_combined_but_instructions_split() {
        let (spec, counts) = emit_for("MIX_sf_sp", 0.0, 1);
        let table = EventTable::for_architecture(spec.architecture());
        let suite = microbenchmark_suite(&spec);
        let k = suite.iter().find(|k| k.name() == "MIX_sf_sp").unwrap();
        let combined: u64 = table
            .events(Metric::WarpsIntSp)
            .iter()
            .map(|ev| counts[ev])
            .sum();
        let expected = k.warp_insts(Component::Int) + k.warp_insts(Component::Sp);
        assert!((combined as f64 - expected).abs() / expected < 1e-6);
        let inst_int: u64 = table
            .events(Metric::InstInt)
            .iter()
            .map(|ev| counts[ev])
            .sum();
        let inst_sp: u64 = table
            .events(Metric::InstSp)
            .iter()
            .map(|ev| counts[ev])
            .sum();
        let ratio = inst_int as f64 / (inst_int + inst_sp) as f64;
        let want = k.warp_insts(Component::Int) / expected;
        assert!((ratio - want).abs() < 1e-6);
    }

    #[test]
    fn subpartitions_share_the_traffic_evenly() {
        let (spec, counts) = emit_for("L2_n0", 0.0, 1);
        let table = EventTable::for_architecture(spec.architecture());
        let evs = table.events(Metric::L2ReadSectors);
        assert_eq!(evs.len(), 2);
        let a = counts[&evs[0]] as f64;
        let b = counts[&evs[1]] as f64;
        assert!((a - b).abs() <= 1.0);
    }

    #[test]
    fn noise_perturbs_counts_reproducibly() {
        let (_, exact) = emit_for("SP_n64", 0.0, 1);
        let (_, noisy1) = emit_for("SP_n64", 0.05, 2);
        let (_, noisy2) = emit_for("SP_n64", 0.05, 2);
        assert_eq!(noisy1, noisy2, "same seed, same counts");
        assert_ne!(exact, noisy1, "noise must change counts");
        // ... but only by a few percent.
        for (ev, &v) in &exact {
            if v > 1000 {
                let n = noisy1[ev] as f64;
                assert!((n - v as f64).abs() / (v as f64) < 0.25, "{ev}: {v} vs {n}");
            }
        }
    }

    #[test]
    fn active_cycles_match_duration_times_frequency() {
        let (spec, counts) = emit_for("Idle", 0.0, 1);
        let suite = microbenchmark_suite(&spec);
        let idle = suite.iter().find(|k| k.name() == "Idle").unwrap();
        let perf = PerfModel::new(spec.clone(), 640.0);
        let cfg = spec.default_config();
        let exec = perf.execute(idle, cfg);
        let cycles = counts[&EventId::Named("active_cycles")] as f64;
        let want = exec.duration_s * cfg.core.as_hz();
        assert!((cycles - want).abs() / want < 1e-6);
    }
}
