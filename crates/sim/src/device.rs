//! The device abstraction the profiling layer programs against.
//!
//! `gpm-profiler` historically took a concrete [`SimulatedGpu`]; fault
//! injection needs to interpose a decorator between the simulator and the
//! profiler without the profiler knowing. [`GpuDevice`] is that seam: the
//! simulated GPU implements it directly, and `gpm-faults` wraps any
//! implementation with a seeded fault plan. The trait deliberately mirrors
//! what NVML + CUPTI expose on real hardware — clock control, a power
//! reading, and event collection — and nothing from the simulator's
//! private ground truth.

use crate::gpu::{EventRecord, PowerMeasurement};
use crate::{Execution, SimError, SimulatedGpu};
use gpm_spec::{DeviceSpec, FreqConfig};
use gpm_workloads::KernelDesc;

/// A GPU the profiler can drive: clocks, power, events, timing.
///
/// Implementations must be deterministic given their construction seed,
/// and [`reseed_measurements`](GpuDevice::reseed_measurements) must put
/// the measurement-noise stream into a state that depends only on
/// `(construction seed, label)` — never on measurement history. The
/// resilient campaign re-derives the stream before every cell so a
/// checkpoint/resume run is bit-identical to an uninterrupted one.
pub trait GpuDevice {
    /// The device's static specification.
    fn spec(&self) -> &DeviceSpec;

    /// The currently applied clock configuration.
    fn clocks(&self) -> FreqConfig;

    /// Applies a clock configuration.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::UnsupportedClocks`] for configurations outside
    /// the device's frequency tables. A faulty device may also *silently
    /// ignore* the request (stuck clocks); callers that care must verify
    /// via [`clocks`](GpuDevice::clocks).
    fn set_clocks(&mut self, config: FreqConfig) -> Result<(), SimError>;

    /// Measures average power over a repetition-padded window of `kernel`
    /// at the current clocks.
    ///
    /// # Errors
    ///
    /// Propagates sensor failures ([`SimError::WindowTooShort`],
    /// [`SimError::SensorDropout`], [`SimError::InvalidPowerSample`]).
    fn measure_power(&mut self, kernel: &KernelDesc) -> Result<PowerMeasurement, SimError>;

    /// Collects the raw performance-counter events for one launch of
    /// `kernel` at the current clocks.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::CounterReadFailed`] on a transient counter
    /// failure; a healthy simulator never fails here.
    fn collect_events(&mut self, kernel: &KernelDesc) -> Result<EventRecord, SimError>;

    /// Executes `kernel` once at the current clocks, returning its timing
    /// and occupancy (no sensor involved, so this is infallible).
    fn execute(&self, kernel: &KernelDesc) -> Execution;

    /// Rewinds the measurement-noise stream to a pure function of
    /// `(construction seed, label)`.
    fn reseed_measurements(&mut self, label: u64);
}

impl GpuDevice for SimulatedGpu {
    fn spec(&self) -> &DeviceSpec {
        SimulatedGpu::spec(self)
    }

    fn clocks(&self) -> FreqConfig {
        SimulatedGpu::clocks(self)
    }

    fn set_clocks(&mut self, config: FreqConfig) -> Result<(), SimError> {
        SimulatedGpu::set_clocks(self, config)
    }

    fn measure_power(&mut self, kernel: &KernelDesc) -> Result<PowerMeasurement, SimError> {
        SimulatedGpu::measure_power(self, kernel)
    }

    fn collect_events(&mut self, kernel: &KernelDesc) -> Result<EventRecord, SimError> {
        Ok(SimulatedGpu::collect_events(self, kernel))
    }

    fn execute(&self, kernel: &KernelDesc) -> Execution {
        SimulatedGpu::execute(self, kernel)
    }

    fn reseed_measurements(&mut self, label: u64) {
        SimulatedGpu::reseed_measurements(self, label);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpm_spec::devices;
    use gpm_workloads::microbenchmark_suite;

    #[test]
    fn reseeding_is_independent_of_measurement_history() {
        let spec = devices::tesla_k40c();
        let suite = microbenchmark_suite(&spec);
        let mut a = SimulatedGpu::new(spec.clone(), 11);
        let mut b = SimulatedGpu::new(spec, 11);

        // Desynchronize the two noise streams, then reseed both with the
        // same label: the next measurements must agree bit-for-bit.
        for _ in 0..3 {
            let _ = a.measure_power(&suite[0]).unwrap();
        }
        a.reseed_measurements(42);
        b.reseed_measurements(42);
        let wa = a.measure_power(&suite[1]).unwrap().watts;
        let wb = b.measure_power(&suite[1]).unwrap().watts;
        assert_eq!(wa.to_bits(), wb.to_bits());
    }

    #[test]
    fn trait_object_free_generic_dispatch_matches_inherent_calls() {
        fn probe<G: GpuDevice>(gpu: &mut G, kernel: &KernelDesc) -> (f64, usize) {
            let w = gpu.measure_power(kernel).unwrap().watts;
            let ev = gpu.collect_events(kernel).unwrap();
            (w, ev.counts.len())
        }
        let spec = devices::tesla_k40c();
        let suite = microbenchmark_suite(&spec);
        let mut gpu = SimulatedGpu::new(spec, 5);
        gpu.reseed_measurements(1);
        let (via_trait, n) = probe(&mut gpu, &suite[0]);
        gpu.reseed_measurements(1);
        let via_inherent = SimulatedGpu::measure_power(&mut gpu, &suite[0])
            .unwrap()
            .watts;
        assert_eq!(via_trait.to_bits(), via_inherent.to_bits());
        assert!(n > 0);
    }
}
