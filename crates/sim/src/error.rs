//! Error type for the simulated substrate.

use gpm_spec::FreqConfig;
use std::fmt;

/// Errors produced by the simulated GPU.
#[derive(Debug, Clone, PartialEq)]
pub enum SimError {
    /// The requested clocks are not in the device's frequency tables
    /// (the driver rejects them, as NVML does).
    UnsupportedClocks(FreqConfig),
    /// A measurement window was too short to contain a single sensor
    /// sample even after the repetition protocol.
    WindowTooShort {
        /// Window duration in seconds.
        duration_s: f64,
        /// Sensor refresh period in seconds.
        refresh_s: f64,
    },
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::UnsupportedClocks(c) => {
                write!(f, "driver rejected unsupported clock configuration {c}")
            }
            SimError::WindowTooShort { duration_s, refresh_s } => write!(
                f,
                "measurement window of {duration_s:.4} s holds no sample at a {refresh_s:.3} s refresh period"
            ),
        }
    }
}

impl std::error::Error for SimError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = SimError::UnsupportedClocks(FreqConfig::from_mhz(1, 2));
        assert!(e.to_string().contains("core 1 MHz"));
        let e = SimError::WindowTooShort {
            duration_s: 0.01,
            refresh_s: 0.1,
        };
        assert!(e.to_string().contains("0.0100"));
    }
}
