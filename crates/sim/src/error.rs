//! Error type for the simulated substrate.

use gpm_spec::FreqConfig;
use std::fmt;

/// Errors produced by the simulated GPU.
#[derive(Debug, Clone, PartialEq)]
pub enum SimError {
    /// The requested clocks are not in the device's frequency tables
    /// (the driver rejects them, as NVML does).
    UnsupportedClocks(FreqConfig),
    /// A measurement window was too short to contain a single sensor
    /// sample even after the repetition protocol.
    WindowTooShort {
        /// Window duration in seconds.
        duration_s: f64,
        /// Sensor refresh period in seconds.
        refresh_s: f64,
    },
    /// A performance-counter read failed transiently (the CUPTI-style
    /// failure mode: the kernel ran but the counters came back empty).
    CounterReadFailed {
        /// Name of the kernel whose counters were lost.
        kernel: String,
    },
    /// The power sensor returned no reading for the window (an NVML
    /// query timeout / dropout).
    SensorDropout,
    /// The power sensor produced a physically impossible reading
    /// (NaN, infinite, or negative watts). The raw value is carried for
    /// diagnostics; callers must not compare it with `==` (NaN).
    InvalidPowerSample {
        /// The offending raw reading.
        watts: f64,
    },
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::UnsupportedClocks(c) => {
                write!(f, "driver rejected unsupported clock configuration {c}")
            }
            SimError::WindowTooShort { duration_s, refresh_s } => write!(
                f,
                "measurement window of {duration_s:.4} s holds no sample at a {refresh_s:.3} s refresh period"
            ),
            SimError::CounterReadFailed { kernel } => {
                write!(f, "performance-counter read failed for kernel {kernel}")
            }
            SimError::SensorDropout => {
                write!(f, "power sensor returned no reading for the window")
            }
            SimError::InvalidPowerSample { watts } => {
                write!(f, "power sensor produced an invalid reading of {watts} W")
            }
        }
    }
}

impl std::error::Error for SimError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = SimError::UnsupportedClocks(FreqConfig::from_mhz(1, 2));
        assert!(e.to_string().contains("core 1 MHz"));
        let e = SimError::WindowTooShort {
            duration_s: 0.01,
            refresh_s: 0.1,
        };
        assert!(e.to_string().contains("0.0100"));
        let e = SimError::CounterReadFailed {
            kernel: "MaxFlops".to_string(),
        };
        assert!(e.to_string().contains("MaxFlops"));
        assert!(SimError::SensorDropout.to_string().contains("no reading"));
        let e = SimError::InvalidPowerSample { watts: f64::NAN };
        assert!(e.to_string().contains("NaN"));
    }
}
