//! The simulated GPU facade: clock control, power measurement and event
//! collection — the NVML + CUPTI surface the paper's tool drives.

use crate::counters::emit_events;
use crate::rng::SimRng;
use crate::{Execution, GroundTruth, PerfModel, PowerSensor, SimError, ThermalModel};
use gpm_spec::{DeviceSpec, EventId, FreqConfig};
use gpm_workloads::KernelDesc;
use std::collections::BTreeMap;
use std::fmt;

/// One averaged power reading for a kernel run (Section V-A protocol).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PowerMeasurement {
    /// Average power over the measurement window, in watts.
    pub watts: f64,
    /// Number of sensor samples aggregated.
    pub samples: u32,
    /// Total window duration (kernel repeated as needed), in seconds.
    pub duration_s: f64,
    /// Kernel repetitions executed to fill the window.
    pub repetitions: u32,
    /// The clocks the kernel actually ran at. Equals the applied clocks
    /// unless power capping stepped the core frequency down (the
    /// behaviour the Fig. 9 footnote describes: "an automatic frequency
    /// decrease to the closest frequency level that does not violate
    /// TDP").
    pub effective_clocks: FreqConfig,
}

/// Raw performance events collected for one profiled kernel launch.
#[derive(Debug, Clone, PartialEq)]
pub struct EventRecord {
    /// The configuration the events were collected at.
    pub config: FreqConfig,
    /// Raw event counts, keyed exactly as CUPTI would report them.
    pub counts: BTreeMap<EventId, u64>,
}

/// A simulated GPU device.
///
/// Provides the three hardware capabilities the paper's methodology
/// needs — [`SimulatedGpu::set_clocks`] (NVML clock control),
/// [`SimulatedGpu::measure_power`] (NVML power sensor with the repetition
/// protocol) and [`SimulatedGpu::collect_events`] (CUPTI counters) — on
/// top of hidden [`GroundTruth`] physics.
///
/// # Example
///
/// ```
/// use gpm_sim::SimulatedGpu;
/// use gpm_spec::{devices, FreqConfig};
/// use gpm_workloads::validation_suite;
///
/// let mut gpu = SimulatedGpu::new(devices::gtx_titan_x(), 11);
/// let app = validation_suite(gpu.spec())[0].clone();
///
/// gpu.set_clocks(FreqConfig::from_mhz(595, 810))?;
/// let low = gpu.measure_power(&app)?;
/// gpu.set_clocks(FreqConfig::from_mhz(1164, 4005))?;
/// let high = gpu.measure_power(&app)?;
/// assert!(high.watts > low.watts);
/// # Ok::<(), gpm_sim::SimError>(())
/// ```
#[derive(Clone)]
pub struct SimulatedGpu {
    spec: DeviceSpec,
    truth: GroundTruth,
    perf: PerfModel,
    sensor: PowerSensor,
    clocks: FreqConfig,
    power_capping: bool,
    thermal: Option<(ThermalModel, f64)>,
    seed: u64,
    rng: SimRng,
}

impl fmt::Debug for SimulatedGpu {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("SimulatedGpu")
            .field("spec", &self.spec.name())
            .field("clocks", &self.clocks)
            .finish_non_exhaustive()
    }
}

impl SimulatedGpu {
    /// Creates a device instance with seeded physics jitter and
    /// measurement noise streams; clocks start at the default
    /// configuration. The same `(spec, seed)` pair always produces an
    /// identical device.
    pub fn new(spec: DeviceSpec, seed: u64) -> Self {
        let truth = GroundTruth::for_device(&spec, seed);
        SimulatedGpu::with_truth(spec, truth, seed)
    }

    /// Creates a device with explicit ground truth (tests; noise-free
    /// setups).
    pub fn with_truth(spec: DeviceSpec, truth: GroundTruth, seed: u64) -> Self {
        let perf = PerfModel::new(spec.clone(), truth.l2_bytes_per_cycle);
        let sensor = PowerSensor::new(spec.power_refresh_ms(), truth.sensor_noise_sd);
        let clocks = spec.default_config();
        SimulatedGpu {
            spec,
            truth,
            perf,
            sensor,
            clocks,
            power_capping: false,
            thermal: None,
            seed,
            rng: SimRng::seed_from_u64(seed.wrapping_mul(0x5851_F42D_4C95_7F2D)),
        }
    }

    /// Rewinds the measurement-noise stream to a state that is a pure
    /// function of `(seed, label)`, independent of how many measurements
    /// were taken before. Checkpoint/resume relies on this: re-deriving
    /// the stream before each campaign cell makes the cell's readings
    /// identical whether the campaign ran straight through or restarted.
    pub fn reseed_measurements(&mut self, label: u64) {
        self.rng =
            SimRng::seed_from_u64(self.seed.wrapping_mul(0x5851_F42D_4C95_7F2D)).derive(label);
    }

    /// Enables the opt-in thermal model: the die heats with dissipated
    /// power and leakage grows with temperature, so long measurement
    /// campaigns see a realistic warm-up drift. Disabled by default.
    pub fn set_thermal_model(&mut self, model: Option<ThermalModel>) {
        self.thermal = model.map(|m| (m, m.ambient_c));
    }

    /// Current die temperature in °C (`None` when the thermal model is
    /// disabled).
    pub fn temperature_c(&self) -> Option<f64> {
        self.thermal.as_ref().map(|(_, t)| *t)
    }

    /// Enables or disables TDP power capping. When enabled, a kernel that
    /// would draw more than TDP runs at the closest lower core level that
    /// respects the cap — the hardware behaviour behind the Fig. 9
    /// footnote. Disabled by default so measurement campaigns observe the
    /// unclamped physics (the paper's sweeps stay under TDP).
    pub fn set_power_capping(&mut self, enabled: bool) {
        self.power_capping = enabled;
    }

    /// Whether TDP power capping is active.
    pub fn power_capping(&self) -> bool {
        self.power_capping
    }

    /// The clocks a kernel would *actually* run at: the applied clocks,
    /// or the stepped-down level selected by power capping.
    pub fn effective_clocks_for(&self, kernel: &KernelDesc) -> FreqConfig {
        if !self.power_capping {
            return self.clocks;
        }
        let mut candidate = self.clocks;
        loop {
            let exec = self.perf.execute(kernel, candidate);
            let watts = self.truth.true_power(candidate, &exec.utilizations);
            if watts <= self.spec.tdp_w() {
                return candidate;
            }
            match self
                .spec
                .core_freqs()
                .iter()
                .copied()
                .find(|&f| f < candidate.core)
            {
                Some(next) => candidate = FreqConfig::new(next, candidate.mem),
                None => return candidate, // floor reached; hardware would thermal-trip
            }
        }
    }

    /// The device specification (public knowledge).
    pub fn spec(&self) -> &DeviceSpec {
        &self.spec
    }

    /// The hidden physics. **For tests and benches only** — using this in
    /// an estimator defeats the purpose of the reproduction; the paper's
    /// tool had no access to these values.
    pub fn truth(&self) -> &GroundTruth {
        &self.truth
    }

    /// The currently applied clock configuration.
    pub fn clocks(&self) -> FreqConfig {
        self.clocks
    }

    /// Applies a clock configuration, as `nvmlDeviceSetApplicationsClocks`
    /// would.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::UnsupportedClocks`] for configurations outside
    /// the device's frequency tables (the driver rejects those).
    pub fn set_clocks(&mut self, config: FreqConfig) -> Result<(), SimError> {
        if !self.spec.supports(config) {
            return Err(SimError::UnsupportedClocks(config));
        }
        self.clocks = config;
        Ok(())
    }

    /// Executes one kernel launch at the current clocks, returning its
    /// duration, true utilizations and bottleneck. (Timing a kernel is
    /// observable on real hardware; the true utilizations inside the
    /// [`Execution`] are not, and only tests should inspect them.)
    pub fn execute(&self, kernel: &KernelDesc) -> Execution {
        self.perf.execute(kernel, self.clocks)
    }

    /// Measures the kernel's average power at the current clocks using
    /// the paper's protocol: repeat the kernel until the window reaches
    /// one second *at the fastest configuration*, then average all sensor
    /// samples in the (possibly longer) actual window.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::WindowTooShort`] only for degenerate sensors
    /// (refresh period above one second).
    pub fn measure_power(&mut self, kernel: &KernelDesc) -> Result<PowerMeasurement, SimError> {
        let effective_clocks = self.effective_clocks_for(kernel);
        let repetitions = self.perf.repetitions_for_window(kernel, 1.0);
        let exec = self.perf.execute(kernel, effective_clocks);
        let duration_s = exec.duration_s * f64::from(repetitions);
        let true_watts = self.truth.true_power(effective_clocks, &exec.utilizations);
        // Thermal feedback: the die warms over the window and leakage
        // scales the static share of the draw.
        let true_watts = match &mut self.thermal {
            None => true_watts,
            Some((model, temp)) => {
                let static_w = self.truth.static_power(effective_clocks);
                // Integrate the window in a few sub-steps so long windows
                // track the RC curve instead of jumping to steady state.
                let steps = 8;
                let dt = duration_s / f64::from(steps);
                let mut acc = 0.0;
                for _ in 0..steps {
                    let p = true_watts + static_w * (model.leakage_factor(*temp) - 1.0);
                    acc += p * dt;
                    *temp = model.step(*temp, p, dt);
                }
                acc / duration_s
            }
        };
        let (watts, samples) = self
            .sensor
            .sample_window(&mut self.rng, true_watts, duration_s)?;
        Ok(PowerMeasurement {
            watts,
            samples,
            duration_s,
            repetitions,
            effective_clocks,
        })
    }

    /// Profiles one kernel launch at the current clocks, returning the
    /// raw Table I event counts (with this device's event noise applied).
    pub fn collect_events(&mut self, kernel: &KernelDesc) -> EventRecord {
        let exec = self.perf.execute(kernel, self.clocks);
        let counts = emit_events(
            &self.spec,
            kernel,
            &exec,
            self.clocks,
            &self.truth,
            &mut self.rng,
        );
        EventRecord {
            config: self.clocks,
            counts,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpm_spec::{devices, Component, Domain};
    use gpm_workloads::{microbenchmark_suite, validation_suite};

    fn gpu() -> SimulatedGpu {
        SimulatedGpu::new(devices::gtx_titan_x(), 42)
    }

    #[test]
    fn clocks_default_to_reference_and_validate() {
        let mut g = gpu();
        assert_eq!(g.clocks(), FreqConfig::from_mhz(975, 3505));
        assert!(g.set_clocks(FreqConfig::from_mhz(595, 810)).is_ok());
        assert_eq!(g.clocks(), FreqConfig::from_mhz(595, 810));
        let err = g.set_clocks(FreqConfig::from_mhz(600, 810)).unwrap_err();
        assert!(matches!(err, SimError::UnsupportedClocks(_)));
        // Failed set leaves clocks untouched.
        assert_eq!(g.clocks(), FreqConfig::from_mhz(595, 810));
    }

    #[test]
    fn power_measurements_are_physically_plausible() {
        let mut g = gpu();
        let suite = microbenchmark_suite(g.spec());
        for k in suite.iter().take(20) {
            let m = g.measure_power(k).unwrap();
            assert!(m.watts > 30.0, "{}: {} W", k.name(), m.watts);
            assert!(
                m.watts < g.spec().tdp_w() * 1.05,
                "{}: {} W",
                k.name(),
                m.watts
            );
            assert!(m.duration_s >= 0.9);
            assert!(m.samples >= 9);
        }
    }

    #[test]
    fn memory_bound_apps_lose_more_power_from_memory_downclock() {
        // The Fig. 2 contrast: BlackScholes (DRAM-heavy) drops ~52%,
        // CUTCP (compute-heavy) only ~24%.
        let mut g = gpu();
        let apps = validation_suite(g.spec());
        let blcksc = apps.iter().find(|k| k.name() == "BLCKSC").unwrap();
        let cutcp = apps.iter().find(|k| k.name() == "CUTCP").unwrap();
        let hi = FreqConfig::from_mhz(975, 3505);
        let lo = FreqConfig::from_mhz(975, 810);

        g.set_clocks(hi).unwrap();
        let b_hi = g.measure_power(blcksc).unwrap().watts;
        let c_hi = g.measure_power(cutcp).unwrap().watts;
        g.set_clocks(lo).unwrap();
        let b_lo = g.measure_power(blcksc).unwrap().watts;
        let c_lo = g.measure_power(cutcp).unwrap().watts;

        let b_drop = 1.0 - b_lo / b_hi;
        let c_drop = 1.0 - c_lo / c_hi;
        assert!(b_drop > 0.35, "BlackScholes drop {b_drop:.2}");
        assert!(c_drop < 0.30, "CUTCP drop {c_drop:.2}");
        assert!(b_drop > c_drop + 0.1);
    }

    #[test]
    fn higher_clocks_mean_higher_power_for_compute_kernels() {
        let mut g = gpu();
        let suite = microbenchmark_suite(g.spec());
        let k = suite.iter().find(|k| k.name() == "SP_n512").unwrap();
        let mut prev = 0.0;
        for f in [595, 785, 975, 1164] {
            g.set_clocks(FreqConfig::from_mhz(f, 3505)).unwrap();
            let w = g.measure_power(k).unwrap().watts;
            assert!(w > prev, "{f} MHz: {w} W");
            prev = w;
        }
    }

    #[test]
    fn measurements_are_reproducible_for_same_seed() {
        let suite = microbenchmark_suite(&devices::gtx_titan_x());
        let mut a = SimulatedGpu::new(devices::gtx_titan_x(), 7);
        let mut b = SimulatedGpu::new(devices::gtx_titan_x(), 7);
        assert_eq!(
            a.measure_power(&suite[3]).unwrap(),
            b.measure_power(&suite[3]).unwrap()
        );
        assert_eq!(a.collect_events(&suite[3]), b.collect_events(&suite[3]));
    }

    #[test]
    fn different_seeds_produce_different_devices() {
        let suite = microbenchmark_suite(&devices::gtx_titan_x());
        let mut a = SimulatedGpu::new(devices::gtx_titan_x(), 1);
        let mut b = SimulatedGpu::new(devices::gtx_titan_x(), 2);
        let wa = a.measure_power(&suite[3]).unwrap().watts;
        let wb = b.measure_power(&suite[3]).unwrap().watts;
        assert_ne!(wa, wb);
        // ... but within family tolerance.
        assert!((wa - wb).abs() / wa < 0.2);
    }

    #[test]
    fn event_records_carry_the_collection_config() {
        let mut g = gpu();
        let suite = microbenchmark_suite(g.spec());
        g.set_clocks(FreqConfig::from_mhz(785, 3300)).unwrap();
        let rec = g.collect_events(&suite[0]);
        assert_eq!(rec.config, FreqConfig::from_mhz(785, 3300));
        assert!(!rec.counts.is_empty());
    }

    #[test]
    fn idle_power_approximates_constant_part() {
        let mut g = SimulatedGpu::with_truth(
            devices::gtx_titan_x(),
            GroundTruth::nominal(gpm_spec::Architecture::Maxwell),
            0,
        );
        let suite = microbenchmark_suite(g.spec());
        let idle = suite.iter().find(|k| k.name() == "Idle").unwrap();
        let w = g.measure_power(idle).unwrap().watts;
        assert!((w - 84.0).abs() < 5.0, "idle power {w} W");
    }

    #[test]
    fn true_normalized_voltage_has_two_regimes_on_maxwell() {
        let g = gpu();
        let reference = g.spec().default_config();
        let low1 =
            g.truth()
                .normalized_voltage(Domain::Core, FreqConfig::from_mhz(595, 3505), reference);
        let low2 =
            g.truth()
                .normalized_voltage(Domain::Core, FreqConfig::from_mhz(709, 3505), reference);
        let high =
            g.truth()
                .normalized_voltage(Domain::Core, FreqConfig::from_mhz(1164, 3505), reference);
        assert_eq!(low1, low2, "plateau region");
        assert!(high > 1.1, "linear region reaches {high}");
    }

    #[test]
    fn power_capping_steps_clocks_down_for_hot_kernels() {
        let spec = devices::gtx_titan_x();
        // A power virus: every component near saturation simultaneously.
        let hot = gpm_workloads::power_virus(&spec);
        let mut gpu = SimulatedGpu::with_truth(
            spec.clone(),
            GroundTruth::nominal(gpm_spec::Architecture::Maxwell),
            3,
        );
        let top = spec.fastest_config();
        gpu.set_clocks(top).unwrap();

        // Without capping the virus exceeds TDP.
        let uncapped = gpu.measure_power(&hot).unwrap();
        assert_eq!(uncapped.effective_clocks, top);
        assert!(
            uncapped.watts > spec.tdp_w(),
            "virus should exceed TDP uncapped: {} W",
            uncapped.watts
        );

        // With capping, the core steps down and power respects the cap.
        gpu.set_power_capping(true);
        assert!(gpu.power_capping());
        let capped = gpu.measure_power(&hot).unwrap();
        assert!(capped.effective_clocks.core < top.core);
        assert_eq!(capped.effective_clocks.mem, top.mem);
        assert!(
            capped.watts <= spec.tdp_w() * 1.02,
            "capped power {} W exceeds TDP",
            capped.watts
        );
        // The applied clocks are untouched; only the effective ones move.
        assert_eq!(gpu.clocks(), top);
    }

    #[test]
    fn thermal_model_adds_warmup_drift_and_extra_leakage() {
        let spec = devices::gtx_titan_x();
        let suite = microbenchmark_suite(&spec);
        let hot_kernel = suite.iter().find(|k| k.name() == "MIX_full").unwrap();

        let mut cold = SimulatedGpu::with_truth(
            spec.clone(),
            GroundTruth::nominal(gpm_spec::Architecture::Maxwell),
            3,
        );
        assert_eq!(cold.temperature_c(), None);
        let baseline = cold.measure_power(hot_kernel).unwrap().watts;

        let mut warm = SimulatedGpu::with_truth(
            spec.clone(),
            GroundTruth::nominal(gpm_spec::Architecture::Maxwell),
            3,
        );
        warm.set_thermal_model(Some(ThermalModel::default()));
        let first = warm.measure_power(hot_kernel).unwrap().watts;
        // Run several windows back-to-back: the die heats, power climbs.
        let mut last = first;
        for _ in 0..30 {
            last = warm.measure_power(hot_kernel).unwrap().watts;
        }
        assert!(
            warm.temperature_c().unwrap() > 60.0,
            "{:?}",
            warm.temperature_c()
        );
        assert!(
            last > first,
            "warm {last} W should exceed cold-start {first} W"
        );
        assert!(last > baseline, "thermal leakage should add power");
        // ... but only by the leakage share (a few percent).
        assert!(last < baseline * 1.10, "{last} vs {baseline}");
    }

    #[test]
    fn idle_gpu_cools_back_toward_ambient() {
        let spec = devices::gtx_titan_x();
        let suite = microbenchmark_suite(&spec);
        let hot_kernel = suite.iter().find(|k| k.name() == "MIX_full").unwrap();
        let idle = suite.iter().find(|k| k.name() == "Idle").unwrap();
        let mut gpu = SimulatedGpu::new(spec, 3);
        gpu.set_thermal_model(Some(ThermalModel::default()));
        for _ in 0..20 {
            gpu.measure_power(hot_kernel).unwrap();
        }
        let hot_temp = gpu.temperature_c().unwrap();
        for _ in 0..40 {
            gpu.measure_power(idle).unwrap();
        }
        let cooled = gpu.temperature_c().unwrap();
        // The idle draw (~84 W) keeps the die warm, but well below the
        // loaded temperature.
        assert!(cooled < hot_temp - 3.0, "{hot_temp} -> {cooled}");
        let idle_steady = ThermalModel::default().steady_state_c(90.0);
        assert!(cooled > ThermalModel::default().ambient_c);
        assert!(cooled < idle_steady + 10.0);
    }

    #[test]
    fn power_capping_leaves_cool_kernels_alone() {
        let spec = devices::gtx_titan_x();
        let suite = microbenchmark_suite(&spec);
        let mut gpu = SimulatedGpu::new(spec.clone(), 4);
        gpu.set_power_capping(true);
        let idle = suite.iter().find(|k| k.name() == "Idle").unwrap();
        let m = gpu.measure_power(idle).unwrap();
        assert_eq!(m.effective_clocks, spec.default_config());
    }

    #[test]
    fn execute_exposes_durations_but_consistent_utilizations() {
        let g = gpu();
        let suite = microbenchmark_suite(g.spec());
        let k = suite.iter().find(|k| k.name() == "DRAM_n0_w4").unwrap();
        let exec = g.execute(k);
        assert!(exec.duration_s > 0.0);
        assert!(exec.utilization(Component::Dram) > 0.8);
    }
}
