//! Simulated GPU substrate for DVFS power-model experiments.
//!
//! The paper's experimental setup needs three things from hardware:
//! clock control + a power sensor (NVML) and performance-event collection
//! (CUPTI). This crate provides all three against a *simulated* GPU whose
//! physics are hidden behind [`GroundTruth`]:
//!
//! - a two-regime core voltage curve (constant below a break frequency,
//!   linear above it — the exact shape the paper measures in Fig. 6) and a
//!   constant memory voltage;
//! - a per-component power law `P = a₀V + V²f(a₁ + Σ γᵢUᵢ)` with
//!   coefficients calibrated so the three paper devices land on their
//!   published power ranges (idle ≈ 50-84 W constant part, ≈ 250 W TDP),
//!   plus an *unmodeled* hidden component so the fitted model can never be
//!   exact;
//! - a roofline performance model ([`PerfModel`]) that converts a
//!   [`gpm_workloads::KernelDesc`] into an execution time and *true*
//!   per-component utilizations at any V-F point — so utilizations shift
//!   with frequency exactly as on hardware, while the model only ever sees
//!   events from the reference configuration;
//! - a sampled, quantized, noisy power sensor ([`PowerSensor`]) with the
//!   per-device refresh periods of Section V-A, and an event counter layer
//!   ([`counters`]) emitting the raw Table I events with per-device count
//!   noise (larger on the Tesla K40c, the paper's explanation for its
//!   higher validation error).
//!
//! The model crate (`gpm-core`) deliberately does **not** depend on this
//! crate: estimators consume only measurements, never ground truth.
//!
//! # Example
//!
//! ```
//! use gpm_sim::SimulatedGpu;
//! use gpm_spec::{devices, FreqConfig};
//! use gpm_workloads::microbenchmark_suite;
//!
//! let spec = devices::gtx_titan_x();
//! let suite = microbenchmark_suite(&spec);
//! let mut gpu = SimulatedGpu::new(spec, 7);
//!
//! gpu.set_clocks(FreqConfig::from_mhz(975, 3505))?;
//! let power = gpu.measure_power(&suite[0])?;
//! assert!(power.watts > 40.0 && power.watts < 260.0);
//!
//! let events = gpu.collect_events(&suite[0]);
//! assert!(!events.counts.is_empty());
//! # Ok::<(), gpm_sim::SimError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod counters;
mod device;
mod error;
mod gpu;
mod perf;
mod rng;
mod sensor;
mod thermal;
mod truth;
mod voltage;

pub use device::GpuDevice;
pub use error::SimError;
pub use gpu::{EventRecord, PowerMeasurement, SimulatedGpu};
pub use perf::{Execution, PerfModel};
pub use rng::SimRng;
pub use sensor::PowerSensor;
pub use thermal::ThermalModel;
pub use truth::{GroundTruth, PowerCoeffs};
pub use voltage::VoltageCurve;
