//! Roofline performance model: execution time and true utilizations.

use gpm_json::{impl_json, FromJson, Json, JsonError, ToJson};
use gpm_spec::{Component, DeviceSpec, FreqConfig, Mhz};
use gpm_workloads::KernelDesc;

/// What limited a kernel's execution time at a given configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Bottleneck {
    /// Throughput of a hardware component.
    Component(Component),
    /// Unoverlappable latency (dependency chains, launch overhead).
    Latency,
}

// Externally tagged, mixing the unit variant (`"Latency"`) with the
// newtype variant (`{"Component": "Sp"}`).
impl ToJson for Bottleneck {
    fn to_json(&self) -> Json {
        match self {
            Bottleneck::Latency => Json::Str("Latency".to_string()),
            Bottleneck::Component(c) => Json::Obj(vec![("Component".to_string(), c.to_json())]),
        }
    }
}

impl FromJson for Bottleneck {
    fn from_json(json: &Json) -> Result<Self, JsonError> {
        match json {
            Json::Str(s) if s == "Latency" => Ok(Bottleneck::Latency),
            Json::Obj(fields) => match gpm_json::field(fields, "Component") {
                Some(c) => Ok(Bottleneck::Component(Component::from_json(c)?)),
                None => Err(JsonError::new("unknown Bottleneck variant")),
            },
            other => Err(JsonError::expected("Bottleneck", other)),
        }
    }
}

/// The outcome of executing one kernel launch at one V-F configuration.
#[derive(Debug, Clone, PartialEq)]
pub struct Execution {
    /// Wall-clock duration of the launch in seconds.
    pub duration_s: f64,
    /// True average utilization of each component, in
    /// [`Component::ALL`] order; each value lies in `[0, 1]`.
    pub utilizations: [f64; 7],
    /// The limiting resource.
    pub bottleneck: Bottleneck,
}

impl_json!(struct Execution {
    duration_s,
    utilizations,
    bottleneck,
});

impl Execution {
    /// True utilization of one component.
    pub fn utilization(&self, c: Component) -> f64 {
        self.utilizations[c.index()]
    }
}

/// Analytical roofline model of kernel execution.
///
/// Execution time is the largest per-resource service time divided by the
/// kernel's issue efficiency `η`:
///
/// ```text
/// T(fc, fm) = max(t_INT+SP, t_DP, t_SF, t_Shared, t_L2, t_DRAM, t_lat) / η
/// ```
///
/// where the INT and SP pipelines share throughput (their warp events are
/// combined on all three paper devices, Table I). Per-component
/// utilization is then `U_c = t_c / T`, so the bottleneck runs at `η` and
/// everything else proportionally lower — and utilizations *shift when
/// frequencies change* (e.g. lowering `fmem` stretches `t_DRAM`, raising
/// DRAM utilization while every core utilization falls), which is the
/// physical effect behind the paper's observation that events measured at
/// one configuration are only approximations elsewhere.
#[derive(Debug, Clone, PartialEq)]
pub struct PerfModel {
    spec: DeviceSpec,
    l2_bytes_per_cycle: f64,
}

impl PerfModel {
    /// Creates a performance model from a device spec and the *true* L2
    /// width (a hidden [`crate::GroundTruth`] parameter).
    ///
    /// # Panics
    ///
    /// Panics if `l2_bytes_per_cycle` is not positive and finite.
    pub fn new(spec: DeviceSpec, l2_bytes_per_cycle: f64) -> Self {
        assert!(
            l2_bytes_per_cycle.is_finite() && l2_bytes_per_cycle > 0.0,
            "l2 width must be positive"
        );
        PerfModel {
            spec,
            l2_bytes_per_cycle,
        }
    }

    /// The device specification this model simulates.
    pub fn spec(&self) -> &DeviceSpec {
        &self.spec
    }

    /// True peak L2 bandwidth in bytes per second at core frequency `fc`.
    pub fn l2_peak_bandwidth(&self, fc: Mhz) -> f64 {
        fc.as_hz() * self.l2_bytes_per_cycle
    }

    /// Executes a kernel at a configuration, returning its duration, true
    /// utilizations and bottleneck.
    pub fn execute(&self, kernel: &KernelDesc, config: FreqConfig) -> Execution {
        let spec = &self.spec;
        let fc = config.core;
        let fm = config.mem;

        let intsp_peak = spec
            .peak_warp_throughput(Component::Sp, fc)
            .expect("sp is a compute unit");
        let dp_peak = spec
            .peak_warp_throughput(Component::Dp, fc)
            .expect("dp is a compute unit");
        let sf_peak = spec
            .peak_warp_throughput(Component::Sf, fc)
            .expect("sf is a compute unit");

        let w_int = kernel.warp_insts(Component::Int);
        let w_sp = kernel.warp_insts(Component::Sp);

        // Per-resource service times (seconds).
        let t_intsp = (w_int + w_sp) / intsp_peak;
        let t_dp = kernel.warp_insts(Component::Dp) / dp_peak;
        let t_sf = kernel.warp_insts(Component::Sf) / sf_peak;
        // Access quality: bank conflicts replay shared wavefronts;
        // uncoalesced patterns waste DRAM bandwidth.
        let t_shared = kernel.bytes(Component::SharedMem) * kernel.shared_bank_conflict_factor()
            / spec.peak_shared_bandwidth(fc);
        let t_l2 = kernel.bytes(Component::L2Cache) / self.l2_peak_bandwidth(fc);
        let t_dram = kernel.bytes(Component::Dram)
            / (spec.peak_dram_bandwidth(fm) * kernel.dram_coalescing());
        let t_lat = kernel.latency_cycles() / fc.as_hz();

        let candidates: [(Bottleneck, f64); 7] = [
            (Bottleneck::Component(Component::Int), t_intsp),
            (Bottleneck::Component(Component::Dp), t_dp),
            (Bottleneck::Component(Component::Sf), t_sf),
            (Bottleneck::Component(Component::SharedMem), t_shared),
            (Bottleneck::Component(Component::L2Cache), t_l2),
            (Bottleneck::Component(Component::Dram), t_dram),
            (Bottleneck::Latency, t_lat),
        ];
        let (mut bottleneck, mut t_max) = candidates[0];
        for &(b, t) in &candidates[1..] {
            if t > t_max {
                bottleneck = b;
                t_max = t;
            }
        }
        // The INT/SP pipe is reported as whichever type dominates.
        if bottleneck == Bottleneck::Component(Component::Int) && w_sp > w_int {
            bottleneck = Bottleneck::Component(Component::Sp);
        }

        let duration = t_max / kernel.issue_efficiency();
        debug_assert!(
            duration > 0.0,
            "kernel descriptors always carry work or latency"
        );

        let mut utilizations = [0.0; 7];
        // Compute units: fraction of their own pipeline's peak (Eq. 8).
        utilizations[Component::Int.index()] = w_int / intsp_peak / duration;
        utilizations[Component::Sp.index()] = w_sp / intsp_peak / duration;
        utilizations[Component::Dp.index()] = t_dp / duration;
        utilizations[Component::Sf.index()] = t_sf / duration;
        // Memory levels: achieved over peak bandwidth (Eq. 9).
        utilizations[Component::SharedMem.index()] = t_shared / duration;
        utilizations[Component::L2Cache.index()] = t_l2 / duration;
        utilizations[Component::Dram.index()] = t_dram / duration;

        Execution {
            duration_s: duration,
            utilizations,
            bottleneck,
        }
    }

    /// Number of back-to-back repetitions needed so the kernel runs at
    /// least `window_s` seconds at the device's *fastest* configuration —
    /// the paper's protocol for outrunning the power sensor's refresh
    /// period (Section V-A: "the kernels were repeatedly executed
    /// whenever necessary, to always reach an execution time of at least
    /// 1 second at the fastest GPU configuration").
    pub fn repetitions_for_window(&self, kernel: &KernelDesc, window_s: f64) -> u32 {
        let fastest = self.spec.fastest_config();
        let single = self.execute(kernel, fastest).duration_s;
        (window_s / single).ceil().max(1.0) as u32
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpm_spec::devices;
    use gpm_workloads::{gemm, microbenchmark_suite, Category};

    fn model() -> PerfModel {
        PerfModel::new(devices::gtx_titan_x(), 640.0)
    }

    fn find(suite: &[KernelDesc], name: &str) -> KernelDesc {
        suite.iter().find(|k| k.name() == name).cloned().unwrap()
    }

    #[test]
    fn utilizations_are_bounded_by_issue_efficiency() {
        let m = model();
        let suite = microbenchmark_suite(m.spec());
        for k in &suite {
            for cfg in [
                FreqConfig::from_mhz(975, 3505),
                FreqConfig::from_mhz(595, 810),
                FreqConfig::from_mhz(1164, 4005),
            ] {
                let exec = m.execute(k, cfg);
                for (i, &u) in exec.utilizations.iter().enumerate() {
                    assert!(
                        (0.0..=1.0 + 1e-9).contains(&u),
                        "{} comp {i} at {cfg}: {u}",
                        k.name()
                    );
                    assert!(u <= k.issue_efficiency() + 1e-9);
                }
                assert!(exec.duration_s > 0.0);
            }
        }
    }

    #[test]
    fn high_intensity_kernels_are_compute_bound() {
        let m = model();
        let suite = microbenchmark_suite(m.spec());
        let k = find(&suite, "SP_n1024");
        let exec = m.execute(&k, m.spec().default_config());
        assert_eq!(exec.bottleneck, Bottleneck::Component(Component::Sp));
        assert!(exec.utilization(Component::Sp) > 0.8);
        assert!(exec.utilization(Component::Dram) < 0.15);
    }

    #[test]
    fn low_intensity_kernels_are_memory_bound() {
        let m = model();
        let suite = microbenchmark_suite(m.spec());
        let k = find(&suite, "DRAM_n0_w4");
        let exec = m.execute(&k, m.spec().default_config());
        assert_eq!(exec.bottleneck, Bottleneck::Component(Component::Dram));
        assert!(exec.utilization(Component::Dram) > 0.8);
    }

    #[test]
    fn arithmetic_sweep_traces_fig5_staircase() {
        // Fig. 5A: increasing N raises the unit's utilization and lowers
        // DRAM/L2 utilization monotonically (along the sweep).
        let m = model();
        let suite = microbenchmark_suite(m.spec());
        let cfg = m.spec().default_config();
        let ns = [1, 2, 4, 8, 16, 32, 64, 128, 256, 512, 1024];
        let mut prev_sp = -1.0;
        let mut prev_dram = 2.0;
        for n in ns {
            let exec = m.execute(&find(&suite, &format!("SP_n{n}")), cfg);
            // Tolerance covers the deterministic issue-efficiency jitter
            // across the sweep (±0.05 band).
            assert!(exec.utilization(Component::Sp) >= prev_sp - 0.06);
            assert!(exec.utilization(Component::Dram) <= prev_dram + 0.06);
            prev_sp = exec.utilization(Component::Sp);
            prev_dram = exec.utilization(Component::Dram);
        }
        assert!(prev_sp > 0.8, "sweep should end compute-bound");
        assert!(prev_dram < 0.15, "sweep should end with near-idle DRAM");
    }

    #[test]
    fn lowering_memory_frequency_raises_dram_utilization() {
        // The Fig. 2 effect: at a lower fmem the same kernel saturates the
        // narrower DRAM, and core utilizations drop.
        let m = model();
        let suite = microbenchmark_suite(m.spec());
        let k = find(&suite, "DRAM_n2_w4");
        let hi = m.execute(&k, FreqConfig::from_mhz(975, 3505));
        let lo = m.execute(&k, FreqConfig::from_mhz(975, 810));
        assert!(lo.utilization(Component::Dram) >= hi.utilization(Component::Dram) - 1e-9);
        assert!(lo.utilization(Component::Int) < hi.utilization(Component::Int));
        assert!(lo.duration_s > hi.duration_s * 3.0, "4.3x narrower DRAM");
    }

    #[test]
    fn raising_core_frequency_shrinks_compute_time() {
        let m = model();
        let suite = microbenchmark_suite(m.spec());
        let k = find(&suite, "SP_n512");
        let slow = m.execute(&k, FreqConfig::from_mhz(595, 3505));
        let fast = m.execute(&k, FreqConfig::from_mhz(1164, 3505));
        let speedup = slow.duration_s / fast.duration_s;
        assert!((speedup - 1164.0 / 595.0).abs() < 0.05, "speedup {speedup}");
    }

    #[test]
    fn memory_bound_kernel_ignores_core_frequency() {
        let m = model();
        let suite = microbenchmark_suite(m.spec());
        let k = find(&suite, "DRAM_n0_w8");
        let slow = m.execute(&k, FreqConfig::from_mhz(595, 3505));
        let fast = m.execute(&k, FreqConfig::from_mhz(1164, 3505));
        let speedup = slow.duration_s / fast.duration_s;
        assert!(
            speedup < 1.05,
            "DRAM-bound kernel sped up {speedup}x from fcore"
        );
    }

    #[test]
    fn bank_conflicts_and_uncoalesced_access_stretch_memory_time() {
        let m = model();
        let cfg = m.spec().default_config();
        let clean = KernelDesc::builder("clean", Category::Shared)
            .shared_bytes(1.0e11, 0.5)
            .dram_bytes(2.0e8, 0.5)
            .l2_bytes(2.0e8, 0.5)
            .issue_efficiency(1.0)
            .build()
            .unwrap();
        let conflicted = KernelDesc::builder("conflicted", Category::Shared)
            .shared_bytes(1.0e11, 0.5)
            .dram_bytes(2.0e8, 0.5)
            .l2_bytes(2.0e8, 0.5)
            .shared_bank_conflicts(4.0)
            .issue_efficiency(1.0)
            .build()
            .unwrap();
        let a = m.execute(&clean, cfg);
        let b = m.execute(&conflicted, cfg);
        // A 4-way conflict quadruples the shared service time.
        assert!(
            (b.duration_s / a.duration_s - 4.0).abs() < 0.2,
            "{}",
            b.duration_s / a.duration_s
        );

        let strided = KernelDesc::builder("strided", Category::Dram)
            .dram_bytes(1.0e10, 0.5)
            .l2_bytes(1.0e10, 0.5)
            .dram_coalescing(0.25)
            .issue_efficiency(1.0)
            .build()
            .unwrap();
        let coalesced = KernelDesc::builder("coalesced", Category::Dram)
            .dram_bytes(1.0e10, 0.5)
            .l2_bytes(1.0e10, 0.5)
            .issue_efficiency(1.0)
            .build()
            .unwrap();
        let a = m.execute(&coalesced, cfg);
        let b = m.execute(&strided, cfg);
        assert!(b.duration_s > a.duration_s * 3.5);
        // Achieved DRAM utilization reflects the wasted bandwidth: the
        // strided kernel still saturates the bus wavefront-wise.
        assert!(b.utilization(Component::Dram) <= 1.0);
    }

    #[test]
    fn int_and_sp_share_the_pipeline() {
        let m = model();
        // A kernel with both INT and SP work takes as long as their sum.
        let k = KernelDesc::builder("both", Category::Mix)
            .warp_insts(Component::Int, 1.0e9)
            .warp_insts(Component::Sp, 1.0e9)
            .issue_efficiency(1.0)
            .build()
            .unwrap();
        let cfg = m.spec().default_config();
        let exec = m.execute(&k, cfg);
        let peak = m
            .spec()
            .peak_warp_throughput(Component::Sp, cfg.core)
            .unwrap();
        assert!((exec.duration_s - 2.0e9 / peak).abs() / exec.duration_s < 1e-9);
        assert!((exec.utilization(Component::Int) - 0.5).abs() < 1e-9);
        assert!((exec.utilization(Component::Sp) - 0.5).abs() < 1e-9);
    }

    #[test]
    fn idle_kernel_is_latency_bound_with_zero_utilization() {
        let m = model();
        let suite = microbenchmark_suite(m.spec());
        let idle = find(&suite, "Idle");
        let exec = m.execute(&idle, m.spec().default_config());
        assert_eq!(exec.bottleneck, Bottleneck::Latency);
        assert!(exec.utilizations.iter().all(|&u| u == 0.0));
        assert!(exec.duration_s > 0.0);
    }

    #[test]
    fn gemm_utilization_grows_with_size() {
        // The Fig. 9 effect.
        let m = model();
        let cfg = m.spec().default_config();
        let u64x = m.execute(&gemm(m.spec(), 64).unwrap(), cfg);
        let u4096 = m.execute(&gemm(m.spec(), 4096).unwrap(), cfg);
        assert!(u4096.utilization(Component::Sp) > u64x.utilization(Component::Sp));
        assert!(u4096.utilization(Component::Sp) > 0.8);
    }

    #[test]
    fn repetition_protocol_reaches_the_window() {
        let m = model();
        let suite = microbenchmark_suite(m.spec());
        let k = find(&suite, "SP_n64");
        let reps = m.repetitions_for_window(&k, 1.0);
        let fastest = m.spec().fastest_config();
        let total = m.execute(&k, fastest).duration_s * f64::from(reps);
        assert!(total >= 1.0);
        // And not wastefully long.
        assert!(total < 2.5);
    }

    #[test]
    #[should_panic(expected = "l2 width")]
    fn rejects_nonpositive_l2_width() {
        let _ = PerfModel::new(devices::gtx_titan_x(), 0.0);
    }
}
