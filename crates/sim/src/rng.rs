//! Deterministic pseudo-random numbers for the simulator.
//!
//! The offline build environment cannot fetch the `rand` crate, so the
//! simulator carries its own small generator: xoshiro256++ seeded through
//! splitmix64 (Blackman & Vigna's recommended construction). Streams are
//! a pure function of the seed — identical on every platform, thread
//! count and build — which is what the reproducibility guarantees of the
//! measurement campaigns rest on.

use std::f64::consts::PI;

/// A seeded xoshiro256++ stream.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SimRng {
    s: [u64; 4],
}

impl SimRng {
    /// Creates a stream from a 64-bit seed (splitmix64 state expansion).
    pub fn seed_from_u64(seed: u64) -> Self {
        let mut sm = seed;
        let mut next = || {
            sm = sm.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = sm;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        };
        SimRng {
            s: [next(), next(), next(), next()],
        }
    }

    /// A child stream derived from this one's seed material and a label —
    /// used to give each independent measurement its own stream so that
    /// campaigns can run in any order (or in parallel) and still produce
    /// identical numbers.
    pub fn derive(&self, label: u64) -> SimRng {
        SimRng::seed_from_u64(
            self.s[0] ^ self.s[2].rotate_left(17) ^ label.wrapping_mul(0xA24B_AED4_963E_E407),
        )
    }

    /// The next 64-bit draw.
    pub fn next_u64(&mut self) -> u64 {
        let result = self.s[0]
            .wrapping_add(self.s[3])
            .rotate_left(23)
            .wrapping_add(self.s[0]);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// Uniform draw in `[0, 1)` with 53 bits of precision.
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// Draws one sample from `N(mean, sd²)`.
///
/// Uses the Box–Muller transform; `sd = 0` returns `mean` exactly.
pub(crate) fn normal(rng: &mut SimRng, mean: f64, sd: f64) -> f64 {
    if sd == 0.0 {
        return mean;
    }
    // Avoid ln(0) by nudging u1 into the open interval.
    let u1 = rng.next_f64().max(f64::MIN_POSITIVE);
    let u2 = rng.next_f64();
    let z = (-2.0 * u1.ln()).sqrt() * (2.0 * PI * u2).cos();
    mean + sd * z
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_sd_is_deterministic() {
        let mut rng = SimRng::seed_from_u64(1);
        assert_eq!(normal(&mut rng, 5.0, 0.0), 5.0);
    }

    #[test]
    fn moments_are_approximately_right() {
        let mut rng = SimRng::seed_from_u64(42);
        let n = 20_000;
        let samples: Vec<f64> = (0..n).map(|_| normal(&mut rng, 2.0, 3.0)).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / n as f64;
        assert!((mean - 2.0).abs() < 0.1, "mean {mean}");
        assert!((var.sqrt() - 3.0).abs() < 0.1, "sd {}", var.sqrt());
    }

    #[test]
    fn seeded_streams_are_reproducible() {
        let a: Vec<f64> = {
            let mut rng = SimRng::seed_from_u64(7);
            (0..10).map(|_| normal(&mut rng, 0.0, 1.0)).collect()
        };
        let b: Vec<f64> = {
            let mut rng = SimRng::seed_from_u64(7);
            (0..10).map(|_| normal(&mut rng, 0.0, 1.0)).collect()
        };
        assert_eq!(a, b);
    }

    #[test]
    fn derived_streams_are_stable_and_distinct() {
        let parent = SimRng::seed_from_u64(3);
        let mut a = parent.derive(10);
        let mut b = parent.derive(11);
        assert_ne!(a.next_u64(), b.next_u64());
        // Deriving is a pure function of (parent seed, label).
        let mut a2 = SimRng::seed_from_u64(3).derive(10);
        let mut a3 = SimRng::seed_from_u64(3).derive(10);
        assert_eq!(a2.next_u64(), a3.next_u64());
    }

    #[test]
    fn uniform_draws_cover_the_unit_interval() {
        let mut rng = SimRng::seed_from_u64(9);
        let mut lo = 1.0f64;
        let mut hi = 0.0f64;
        for _ in 0..10_000 {
            let x = rng.next_f64();
            assert!((0.0..1.0).contains(&x));
            lo = lo.min(x);
            hi = hi.max(x);
        }
        assert!(lo < 0.01 && hi > 0.99);
    }
}
