//! Gaussian sampling on top of `rand` (Box–Muller; `rand_distr` is not in
//! the approved dependency set).

use rand::Rng;

/// Draws one sample from `N(mean, sd²)`.
///
/// Uses the Box–Muller transform; `sd = 0` returns `mean` exactly.
pub(crate) fn normal<R: Rng>(rng: &mut R, mean: f64, sd: f64) -> f64 {
    if sd == 0.0 {
        return mean;
    }
    // Avoid ln(0) by sampling u1 from the open interval.
    let u1: f64 = rng.gen_range(f64::MIN_POSITIVE..1.0);
    let u2: f64 = rng.gen::<f64>();
    let z = (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos();
    mean + sd * z
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn zero_sd_is_deterministic() {
        let mut rng = StdRng::seed_from_u64(1);
        assert_eq!(normal(&mut rng, 5.0, 0.0), 5.0);
    }

    #[test]
    fn moments_are_approximately_right() {
        let mut rng = StdRng::seed_from_u64(42);
        let n = 20_000;
        let samples: Vec<f64> = (0..n).map(|_| normal(&mut rng, 2.0, 3.0)).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / n as f64;
        assert!((mean - 2.0).abs() < 0.1, "mean {mean}");
        assert!((var.sqrt() - 3.0).abs() < 0.1, "sd {}", var.sqrt());
    }

    #[test]
    fn seeded_streams_are_reproducible() {
        let a: Vec<f64> = {
            let mut rng = StdRng::seed_from_u64(7);
            (0..10).map(|_| normal(&mut rng, 0.0, 1.0)).collect()
        };
        let b: Vec<f64> = {
            let mut rng = StdRng::seed_from_u64(7);
            (0..10).map(|_| normal(&mut rng, 0.0, 1.0)).collect()
        };
        assert_eq!(a, b);
    }
}
