//! NVML-like sampled power sensor.

use crate::rng::{normal, SimRng};
use crate::SimError;

/// A sampled on-board power sensor.
///
/// NVML exposes a power reading that refreshes at a device-specific period
/// — an estimated 35 ms on the Titan Xp, 100 ms on the GTX Titan X and
/// 15 ms on the Tesla K40c (Section V-A). Short kernels therefore yield
/// "misleading power measurements", which is why the paper repeats kernels
/// until the run is at least one second long. The sensor model reproduces
/// this: a measurement window of duration `D` yields `⌊D / refresh⌋`
/// samples, each the true power perturbed by multiplicative Gaussian noise
/// and quantized to milliwatts; the reported value is the sample mean.
#[derive(Debug, Clone, PartialEq)]
pub struct PowerSensor {
    refresh_s: f64,
    noise_sd: f64,
}

impl PowerSensor {
    /// Creates a sensor with the given refresh period (milliseconds) and
    /// relative per-sample noise.
    ///
    /// # Panics
    ///
    /// Panics if `refresh_ms` is not positive or `noise_sd` is negative.
    pub fn new(refresh_ms: f64, noise_sd: f64) -> Self {
        assert!(
            refresh_ms > 0.0 && refresh_ms.is_finite(),
            "refresh must be positive"
        );
        assert!(
            noise_sd >= 0.0 && noise_sd.is_finite(),
            "noise must be non-negative"
        );
        PowerSensor {
            refresh_s: refresh_ms / 1000.0,
            noise_sd,
        }
    }

    /// The refresh period in seconds.
    pub fn refresh_s(&self) -> f64 {
        self.refresh_s
    }

    /// Samples the sensor over a window of `duration_s` seconds during
    /// which the true draw is `true_watts`, returning the averaged reading
    /// and the number of samples it aggregates.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::WindowTooShort`] when the window contains no
    /// sample — the hardware situation the repetition protocol exists to
    /// avoid — and [`SimError::InvalidPowerSample`] when the true draw or
    /// any individual sample is NaN, infinite, or negative. Rejecting bad
    /// samples here keeps them out of medians and training data, where a
    /// single NaN used to poison the whole campaign silently.
    pub fn sample_window(
        &self,
        rng: &mut SimRng,
        true_watts: f64,
        duration_s: f64,
    ) -> Result<(f64, u32), SimError> {
        if !true_watts.is_finite() || true_watts < 0.0 {
            return Err(SimError::InvalidPowerSample { watts: true_watts });
        }
        let n = (duration_s / self.refresh_s).floor() as u32;
        if n == 0 {
            return Err(SimError::WindowTooShort {
                duration_s,
                refresh_s: self.refresh_s,
            });
        }
        let mut acc = 0.0;
        for _ in 0..n {
            let sample = normal(rng, true_watts, true_watts * self.noise_sd);
            if !sample.is_finite() || sample < 0.0 {
                return Err(SimError::InvalidPowerSample { watts: sample });
            }
            // NVML reports integer milliwatts.
            acc += (sample * 1000.0).round() / 1000.0;
        }
        Ok((acc / f64::from(n), n))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn short_window_errors() {
        let s = PowerSensor::new(100.0, 0.0);
        let mut rng = SimRng::seed_from_u64(0);
        assert!(matches!(
            s.sample_window(&mut rng, 100.0, 0.05),
            Err(SimError::WindowTooShort { .. })
        ));
    }

    #[test]
    fn noiseless_sensor_reads_truth() {
        let s = PowerSensor::new(100.0, 0.0);
        let mut rng = SimRng::seed_from_u64(0);
        let (w, n) = s.sample_window(&mut rng, 123.456, 1.0).unwrap();
        assert_eq!(n, 10);
        assert!((w - 123.456).abs() < 1e-9);
    }

    #[test]
    fn sample_count_scales_with_window_and_refresh() {
        let s = PowerSensor::new(15.0, 0.0);
        let mut rng = SimRng::seed_from_u64(0);
        let (_, n) = s.sample_window(&mut rng, 100.0, 1.5).unwrap();
        assert_eq!(n, 100);
    }

    #[test]
    fn noise_averages_out_over_long_windows() {
        let s = PowerSensor::new(15.0, 0.05);
        let mut rng = SimRng::seed_from_u64(42);
        let (short, _) = s.sample_window(&mut rng, 200.0, 0.05).unwrap(); // 3 samples
        let (long, _) = s.sample_window(&mut rng, 200.0, 30.0).unwrap(); // 2000 samples
        assert!((long - 200.0).abs() < (short - 200.0).abs().max(0.5));
        assert!((long - 200.0).abs() < 0.5);
    }

    #[test]
    fn readings_are_quantized_to_milliwatts() {
        let s = PowerSensor::new(100.0, 0.0);
        let mut rng = SimRng::seed_from_u64(0);
        let (w, _) = s.sample_window(&mut rng, 99.999_999_7, 0.2).unwrap();
        assert_eq!(w, 100.0);
    }

    #[test]
    #[should_panic(expected = "refresh")]
    fn zero_refresh_panics() {
        let _ = PowerSensor::new(0.0, 0.0);
    }

    #[test]
    fn nan_truth_is_a_typed_error() {
        let s = PowerSensor::new(100.0, 0.0);
        let mut rng = SimRng::seed_from_u64(0);
        match s.sample_window(&mut rng, f64::NAN, 1.0) {
            Err(SimError::InvalidPowerSample { watts }) => assert!(watts.is_nan()),
            other => panic!("expected InvalidPowerSample, got {other:?}"),
        }
    }

    #[test]
    fn negative_and_infinite_truth_are_typed_errors() {
        let s = PowerSensor::new(100.0, 0.0);
        let mut rng = SimRng::seed_from_u64(0);
        assert!(matches!(
            s.sample_window(&mut rng, -5.0, 1.0),
            Err(SimError::InvalidPowerSample { watts }) if watts == -5.0
        ));
        assert!(matches!(
            s.sample_window(&mut rng, f64::INFINITY, 1.0),
            Err(SimError::InvalidPowerSample { .. })
        ));
    }

    #[test]
    fn pathological_noise_cannot_smuggle_negative_samples() {
        // With absurd relative noise individual samples go negative; the
        // sensor must refuse rather than clamp (the old behavior) or
        // average the negative reading into the window.
        let s = PowerSensor::new(5.0, 50.0);
        let mut rng = SimRng::seed_from_u64(7);
        let mut saw_rejection = false;
        for _ in 0..20 {
            match s.sample_window(&mut rng, 100.0, 1.0) {
                Ok((w, _)) => assert!(w.is_finite() && w >= 0.0),
                Err(SimError::InvalidPowerSample { watts }) => {
                    assert!(watts < 0.0 || !watts.is_finite());
                    saw_rejection = true;
                }
                Err(e) => panic!("unexpected error {e}"),
            }
        }
        assert!(
            saw_rejection,
            "50x relative noise never produced a negative sample"
        );
    }
}

#[cfg(test)]
mod prop_tests {
    use super::*;

    #[test]
    fn sample_counts_and_means_are_sane() {
        gpm_check::check("sample_counts_and_means_are_sane", |g| {
            let refresh_ms = g.f64_in(5.0, 200.0);
            let truth = g.f64_in(30.0, 280.0);
            let duration = g.f64_in(0.5, 5.0);
            let seed = g.u64_in(0..100);
            let sensor = PowerSensor::new(refresh_ms, 0.01);
            let mut rng = SimRng::seed_from_u64(seed);
            match sensor.sample_window(&mut rng, truth, duration) {
                Ok((watts, n)) => {
                    assert_eq!(n, (duration / (refresh_ms / 1000.0)).floor() as u32);
                    assert!(watts > 0.0);
                    // 1% noise: the mean stays within ~6 sigma/sqrt(n).
                    let bound = truth * 0.06 / (f64::from(n)).sqrt() + 0.01;
                    assert!(
                        (watts - truth).abs() < bound.max(truth * 0.05),
                        "{watts} vs {truth} (n = {n})"
                    );
                }
                Err(SimError::WindowTooShort { .. }) => {
                    assert!(duration < refresh_ms / 1000.0);
                }
                Err(e) => panic!("unexpected error {e}"),
            }
        });
    }
}
