//! Optional first-order thermal model.
//!
//! The paper's measurement campaigns run long enough for the card to
//! reach a thermal steady state, and leakage power grows with die
//! temperature — one of the real-hardware effects folded into the
//! "constant" part of the paper's model. This module provides an opt-in
//! RC thermal model for the simulated GPU: die temperature follows the
//! dissipated power with a first-order lag, and the static (leakage)
//! power grows linearly with the temperature rise. It is **disabled by
//! default** so the calibrated figures are unaffected; enabling it lets
//! robustness experiments inject realistic measurement drift.

use gpm_json::impl_json;

/// First-order (RC) thermal model parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ThermalModel {
    /// Ambient/idle temperature in °C.
    pub ambient_c: f64,
    /// Thermal resistance in °C per watt: the steady-state temperature
    /// rise is `resistance x power`.
    pub resistance_c_per_w: f64,
    /// Thermal time constant in seconds (tens of seconds on real cards).
    pub time_constant_s: f64,
    /// Fractional increase of *static* power per °C above ambient
    /// (leakage grows roughly exponentially; linearized here).
    pub leakage_per_c: f64,
}

impl_json!(struct ThermalModel {
    ambient_c,
    resistance_c_per_w,
    time_constant_s,
    leakage_per_c,
});

impl Default for ThermalModel {
    fn default() -> Self {
        // Plausible air-cooled flagship values: ~250 W -> ~55 °C rise,
        // tau ~ 25 s, leakage +0.4%/°C.
        ThermalModel {
            ambient_c: 28.0,
            resistance_c_per_w: 0.22,
            time_constant_s: 25.0,
            leakage_per_c: 0.004,
        }
    }
}

impl ThermalModel {
    /// Steady-state die temperature at a constant power draw.
    pub fn steady_state_c(&self, power_w: f64) -> f64 {
        self.ambient_c + self.resistance_c_per_w * power_w
    }

    /// Advances the die temperature by `dt_s` seconds under a constant
    /// power draw, returning the new temperature.
    pub fn step(&self, temp_c: f64, power_w: f64, dt_s: f64) -> f64 {
        let target = self.steady_state_c(power_w);
        let alpha = 1.0 - (-dt_s / self.time_constant_s).exp();
        temp_c + alpha * (target - temp_c)
    }

    /// Multiplier applied to the static power at a given temperature.
    pub fn leakage_factor(&self, temp_c: f64) -> f64 {
        1.0 + self.leakage_per_c * (temp_c - self.ambient_c).max(0.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn steady_state_scales_with_power() {
        let t = ThermalModel::default();
        assert!((t.steady_state_c(0.0) - 28.0).abs() < 1e-12);
        assert!((t.steady_state_c(250.0) - (28.0 + 55.0)).abs() < 1e-9);
    }

    #[test]
    fn step_converges_monotonically_to_steady_state() {
        let t = ThermalModel::default();
        let mut temp = t.ambient_c;
        let target = t.steady_state_c(200.0);
        let mut prev = temp;
        for _ in 0..40 {
            temp = t.step(temp, 200.0, 5.0);
            assert!(temp >= prev - 1e-12, "heating must be monotone");
            assert!(temp <= target + 1e-9);
            prev = temp;
        }
        assert!((temp - target).abs() < 1.0, "{temp} vs {target}");
    }

    #[test]
    fn cooling_returns_to_ambient() {
        let t = ThermalModel::default();
        let hot = t.steady_state_c(250.0);
        let cooled = t.step(hot, 0.0, 100.0);
        assert!(cooled < hot);
        assert!(cooled > t.ambient_c - 1e-9);
    }

    #[test]
    fn one_time_constant_covers_63_percent() {
        let t = ThermalModel::default();
        let target = t.steady_state_c(100.0);
        let temp = t.step(t.ambient_c, 100.0, t.time_constant_s);
        let progress = (temp - t.ambient_c) / (target - t.ambient_c);
        assert!((progress - 0.632).abs() < 0.01, "progress {progress}");
    }

    #[test]
    fn leakage_factor_grows_above_ambient_only() {
        let t = ThermalModel::default();
        assert_eq!(t.leakage_factor(t.ambient_c), 1.0);
        assert_eq!(t.leakage_factor(t.ambient_c - 10.0), 1.0);
        assert!((t.leakage_factor(t.ambient_c + 50.0) - 1.2).abs() < 1e-12);
    }
}
