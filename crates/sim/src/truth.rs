//! Hidden ground-truth physics of a simulated device.
//!
//! Everything in this module is what the *real hardware knows* and the
//! modeler does not: true voltage curves, true power coefficients, the
//! true L2 width, and the noise levels of the sensors and counters. The
//! estimator in `gpm-core` never sees these values; tests and benches use
//! them to score how well the estimator recovered them.

use crate::rng::{normal, SimRng};
use crate::VoltageCurve;
use gpm_json::impl_json;
use gpm_spec::{Architecture, Component, Domain, FreqConfig, Metric};
use std::collections::BTreeMap;

/// True power-law coefficients of a device (all hidden from the model).
///
/// The ground-truth power is
///
/// ```text
/// P = a₀·Vc + Vc²·fc·(a₁ + Σᵢ γᵢ·Uᵢ + γ_hidden·U_hidden)
///   + b₀·Vm + Vm²·fm·(b₁ + γ_dram·U_dram)
/// ```
///
/// with voltages in volts, frequencies in hertz and coefficients in
/// `W/V` (static) and `W/(V²·Hz)` (dynamic). `U_hidden` models GPU fabric
/// the paper could not observe through events ("the power consumptions of
/// other non-modelled GPU components", Section V-B) — it guarantees the
/// fitted model has an irreducible error floor, as on real hardware.
#[derive(Debug, Clone, PartialEq)]
pub struct PowerCoeffs {
    /// Core-domain static coefficient `a₀` (W/V).
    pub core_static: f64,
    /// Core-domain utilization-independent dynamic coefficient `a₁`.
    pub core_idle_dyn: f64,
    /// Dynamic coefficients `γᵢ` for the six core-domain components, in
    /// [`Component::CORE`] order (Int, Sp, Dp, Sf, SharedMem, L2Cache).
    pub gamma_core: [f64; 6],
    /// Memory-domain static coefficient `b₀` (W/V).
    pub mem_static: f64,
    /// Memory-domain utilization-independent dynamic coefficient `b₁`.
    pub mem_idle_dyn: f64,
    /// DRAM dynamic coefficient.
    pub gamma_dram: f64,
    /// Coefficient of the hidden (unobservable) fabric component.
    pub gamma_hidden: f64,
}

/// The complete hidden state of one simulated GPU instance.
#[derive(Debug, Clone, PartialEq)]
pub struct GroundTruth {
    /// True core-domain voltage curve.
    pub core_voltage: VoltageCurve,
    /// True memory-domain voltage curve (constant on all paper devices).
    pub mem_voltage: VoltageCurve,
    /// True power coefficients.
    pub coeffs: PowerCoeffs,
    /// True L2 bandwidth in bytes per core cycle (the quantity the paper
    /// measures with dedicated microbenchmarks).
    pub l2_bytes_per_cycle: f64,
    /// Relative standard deviation of performance-event counts
    /// (run-to-run counter jitter).
    pub event_noise_sd: f64,
    /// Fixed multiplicative *bias* per metric: how far each event family
    /// systematically misrepresents the quantity it is supposed to count.
    /// This — not random jitter — is the mechanism behind Section V-B's
    /// explanation of the Tesla K40c's higher error ("a reduced accuracy
    /// of the hardware events when characterizing the utilization of the
    /// GPU components (using the undisclosed events)"): a biased event
    /// distorts every profile the same way, so it cannot be averaged out.
    /// `ACycles` is never biased (timing is reliable on all devices).
    pub event_bias: BTreeMap<Metric, f64>,
    /// Event *cross-talk* coefficient: the fraction of a component's
    /// activity that leaks into *other* components' event counters
    /// (expressed in utilization space). Microbenchmarks isolate one
    /// component at a time, so cross-talk contaminates application
    /// profiles differently from the training profiles — a distortion
    /// regression cannot absorb, unlike a fixed per-metric bias. This is
    /// the dominant cause of the Tesla K40c's higher validation error.
    pub event_crosstalk: f64,
    /// Relative standard deviation of each power-sensor sample.
    pub sensor_noise_sd: f64,
}

impl_json!(struct PowerCoeffs {
    core_static,
    core_idle_dyn,
    gamma_core,
    mem_static,
    mem_idle_dyn,
    gamma_dram,
    gamma_hidden,
});

impl_json!(struct GroundTruth {
    core_voltage,
    mem_voltage,
    coeffs,
    l2_bytes_per_cycle,
    event_noise_sd,
    event_bias,
    event_crosstalk,
    sensor_noise_sd,
});

impl GroundTruth {
    /// The nominal (unjittered) physics of a device family, calibrated so
    /// each paper GPU lands on its published power envelope: constant
    /// part ≈ 84 W at the GTX Titan X reference (Fig. 5B), dropping to
    /// ≈ 50 W at the 810 MHz memory level (Fig. 10), peak suite power
    /// just under TDP (Fig. 7's 248 W maximum).
    pub fn nominal(arch: Architecture) -> GroundTruth {
        match arch {
            Architecture::Maxwell => GroundTruth {
                core_voltage: VoltageCurve::TwoRegime {
                    vmin: 0.85,
                    break_mhz: 810,
                    volts_per_mhz: 0.000_75,
                },
                mem_voltage: VoltageCurve::Constant { volts: 1.35 },
                coeffs: PowerCoeffs {
                    core_static: 15.4,
                    core_idle_dyn: 2.16e-8,
                    gamma_core: [2.0e-8, 2.6e-8, 3.2e-8, 2.4e-8, 1.6e-8, 1.8e-8],
                    mem_static: 7.4,
                    mem_idle_dyn: 6.1e-9,
                    gamma_dram: 1.45e-8,
                    gamma_hidden: 8.0e-9,
                },
                l2_bytes_per_cycle: 640.0,
                event_noise_sd: 0.070,
                event_bias: BTreeMap::new(),
                event_crosstalk: 0.015,
                sensor_noise_sd: 0.008,
            },
            Architecture::Pascal => GroundTruth {
                core_voltage: VoltageCurve::TwoRegime {
                    vmin: 0.80,
                    break_mhz: 1050,
                    volts_per_mhz: 0.000_65,
                },
                mem_voltage: VoltageCurve::Constant { volts: 1.35 },
                coeffs: PowerCoeffs {
                    core_static: 14.6,
                    core_idle_dyn: 1.48e-8,
                    gamma_core: [1.2e-8, 1.56e-8, 1.92e-8, 1.44e-8, 9.6e-9, 1.08e-8],
                    mem_static: 5.9,
                    mem_idle_dyn: 3.37e-9,
                    gamma_dram: 6.9e-9,
                    gamma_hidden: 5.0e-9,
                },
                l2_bytes_per_cycle: 1024.0,
                event_noise_sd: 0.120,
                event_bias: BTreeMap::new(),
                event_crosstalk: 0.02,
                sensor_noise_sd: 0.008,
            },
            Architecture::Kepler => GroundTruth {
                core_voltage: VoltageCurve::TwoRegime {
                    vmin: 0.92,
                    break_mhz: 700,
                    volts_per_mhz: 0.000_50,
                },
                mem_voltage: VoltageCurve::Constant { volts: 1.50 },
                coeffs: PowerCoeffs {
                    core_static: 17.9,
                    core_idle_dyn: 2.25e-8,
                    gamma_core: [2.3e-8, 3.0e-8, 3.7e-8, 2.76e-8, 1.84e-8, 2.07e-8],
                    mem_static: 6.7,
                    mem_idle_dyn: 4.44e-9,
                    gamma_dram: 9.0e-9,
                    gamma_hidden: 9.0e-9,
                },
                l2_bytes_per_cycle: 512.0,
                event_noise_sd: 0.500,
                event_bias: BTreeMap::new(),
                event_crosstalk: 0.30,
                sensor_noise_sd: 0.010,
            },
            // The three datacenter families below are synthetic classes
            // (no paper measurements): their envelopes are calibrated to
            // the public spec sheets the same way the paper families are
            // calibrated to Figs. 5/7/10 — full-load default-clock power
            // lands at 60–75 % of TDP and the fastest configuration may
            // exceed TDP moderately. HBM runs at a lower constant voltage
            // than GDDR5 and their server-grade counters are the cleanest
            // of all families.
            Architecture::Volta => GroundTruth {
                core_voltage: VoltageCurve::TwoRegime {
                    vmin: 0.75,
                    break_mhz: 900,
                    volts_per_mhz: 0.000_55,
                },
                mem_voltage: VoltageCurve::Constant { volts: 1.20 },
                coeffs: PowerCoeffs {
                    core_static: 18.0,
                    core_idle_dyn: 2.4e-8,
                    gamma_core: [2.6e-8, 3.4e-8, 4.2e-8, 3.1e-8, 2.1e-8, 2.4e-8],
                    mem_static: 9.5,
                    mem_idle_dyn: 1.2e-8,
                    gamma_dram: 3.6e-8,
                    gamma_hidden: 1.1e-8,
                },
                l2_bytes_per_cycle: 2048.0,
                event_noise_sd: 0.060,
                event_bias: BTreeMap::new(),
                event_crosstalk: 0.012,
                sensor_noise_sd: 0.006,
            },
            Architecture::Ampere => GroundTruth {
                core_voltage: VoltageCurve::TwoRegime {
                    vmin: 0.72,
                    break_mhz: 960,
                    volts_per_mhz: 0.000_50,
                },
                mem_voltage: VoltageCurve::Constant { volts: 1.20 },
                coeffs: PowerCoeffs {
                    core_static: 24.0,
                    core_idle_dyn: 3.4e-8,
                    gamma_core: [3.8e-8, 5.0e-8, 6.1e-8, 4.6e-8, 3.1e-8, 3.5e-8],
                    mem_static: 11.0,
                    mem_idle_dyn: 1.8e-8,
                    gamma_dram: 5.0e-8,
                    gamma_hidden: 1.7e-8,
                },
                l2_bytes_per_cycle: 4096.0,
                event_noise_sd: 0.055,
                event_bias: BTreeMap::new(),
                event_crosstalk: 0.012,
                sensor_noise_sd: 0.006,
            },
            Architecture::Hopper => GroundTruth {
                core_voltage: VoltageCurve::TwoRegime {
                    vmin: 0.70,
                    break_mhz: 1200,
                    volts_per_mhz: 0.000_55,
                },
                mem_voltage: VoltageCurve::Constant { volts: 1.20 },
                coeffs: PowerCoeffs {
                    core_static: 30.0,
                    core_idle_dyn: 4.5e-8,
                    gamma_core: [5.2e-8, 6.8e-8, 8.4e-8, 6.2e-8, 4.2e-8, 4.7e-8],
                    mem_static: 16.0,
                    mem_idle_dyn: 2.2e-8,
                    gamma_dram: 6.8e-8,
                    gamma_hidden: 2.2e-8,
                },
                l2_bytes_per_cycle: 6144.0,
                event_noise_sd: 0.050,
                event_bias: BTreeMap::new(),
                event_crosstalk: 0.010,
                sensor_noise_sd: 0.006,
            },
        }
    }

    /// A device *instance*: the nominal family physics with a seeded ±3%
    /// coefficient jitter and small voltage-curve perturbations, so that
    /// two simulated cards of the same family — like two physical cards —
    /// are close but not identical.
    pub fn for_architecture(arch: Architecture, seed: u64) -> GroundTruth {
        let mut truth = GroundTruth::nominal(arch);
        let mut rng = SimRng::seed_from_u64(seed ^ 0x9E37_79B9_7F4A_7C15);
        let mut jitter = |x: &mut f64| *x *= normal(&mut rng, 1.0, 0.03).clamp(0.9, 1.1);
        jitter(&mut truth.coeffs.core_static);
        jitter(&mut truth.coeffs.core_idle_dyn);
        for g in truth.coeffs.gamma_core.iter_mut() {
            jitter(g);
        }
        jitter(&mut truth.coeffs.mem_static);
        jitter(&mut truth.coeffs.mem_idle_dyn);
        jitter(&mut truth.coeffs.gamma_dram);
        jitter(&mut truth.coeffs.gamma_hidden);
        jitter(&mut truth.l2_bytes_per_cycle);
        // Per-metric systematic event bias: small on the Titans, large on
        // the Kepler device, whose undisclosed events the paper found
        // unreliable. `ACycles` stays exact.
        let bias_sd = match arch {
            Architecture::Pascal => 0.03,
            Architecture::Maxwell => 0.025,
            Architecture::Kepler => 0.15,
            // Server parts: disclosed, well-validated counters.
            Architecture::Volta | Architecture::Ampere | Architecture::Hopper => 0.02,
        };
        for metric in Metric::ALL {
            if metric == Metric::ActiveCycles {
                continue;
            }
            let b = normal(&mut rng, 1.0, bias_sd).clamp(0.6, 1.4);
            truth.event_bias.insert(metric, b);
        }
        if let VoltageCurve::TwoRegime {
            vmin,
            break_mhz,
            volts_per_mhz,
        } = truth.core_voltage
        {
            let dv = normal(&mut rng, 1.0, 0.02).clamp(0.95, 1.05);
            let db = normal(&mut rng, 0.0, 10.0).clamp(-25.0, 25.0);
            let ds = normal(&mut rng, 1.0, 0.03).clamp(0.9, 1.1);
            truth.core_voltage = VoltageCurve::TwoRegime {
                vmin: vmin * dv,
                break_mhz: (f64::from(break_mhz) + db).round().max(1.0) as u32,
                volts_per_mhz: volts_per_mhz * ds,
            };
        }
        truth
    }

    /// Physics for a *specific device*: the family instance of
    /// [`GroundTruth::for_architecture`] with its core-side coefficients
    /// scaled by the SM-count ratio to the family flagship and its
    /// memory-side coefficients by the bus-width ratio — a 16-SM card
    /// cannot draw flagship power. The three paper devices *are* their
    /// families' flagships, so their physics are unchanged.
    pub fn for_device(spec: &gpm_spec::DeviceSpec, seed: u64) -> GroundTruth {
        let mut truth = GroundTruth::for_architecture(spec.architecture(), seed);
        let (flagship_sms, flagship_bus) = match spec.architecture() {
            Architecture::Pascal => (30.0, 48.0),
            Architecture::Maxwell => (24.0, 48.0),
            Architecture::Kepler => (15.0, 48.0),
            Architecture::Volta => (80.0, 1024.0),
            Architecture::Ampere => (108.0, 1280.0),
            Architecture::Hopper => (132.0, 1280.0),
        };
        let core_ratio = f64::from(spec.num_sms()) / flagship_sms;
        truth.coeffs.core_static *= core_ratio;
        truth.coeffs.core_idle_dyn *= core_ratio;
        for g in truth.coeffs.gamma_core.iter_mut() {
            *g *= core_ratio;
        }
        truth.coeffs.gamma_hidden *= core_ratio;
        let mem_ratio = f64::from(spec.mem_bus_bytes_per_cycle()) / flagship_bus;
        truth.coeffs.mem_static *= mem_ratio;
        truth.coeffs.mem_idle_dyn *= mem_ratio;
        truth.coeffs.gamma_dram *= mem_ratio;
        truth
    }

    /// The systematic multiplicative bias of a metric's events (1.0 when
    /// unbiased).
    pub fn bias_for(&self, metric: Metric) -> f64 {
        self.event_bias.get(&metric).copied().unwrap_or(1.0)
    }

    /// True voltage of a domain at a configuration, in volts.
    pub fn voltage(&self, domain: Domain, config: FreqConfig) -> f64 {
        match domain {
            Domain::Core => self.core_voltage.volts_at(config.core),
            Domain::Memory => self.mem_voltage.volts_at(config.mem),
        }
    }

    /// True voltage normalized to a reference configuration (the
    /// quantity `V̄` that the estimator tries to recover).
    pub fn normalized_voltage(
        &self,
        domain: Domain,
        config: FreqConfig,
        reference: FreqConfig,
    ) -> f64 {
        match domain {
            Domain::Core => self.core_voltage.normalized_at(config.core, reference.core),
            Domain::Memory => self.mem_voltage.normalized_at(config.mem, reference.mem),
        }
    }

    /// Noise-free true power in watts at `config` for the given true
    /// per-component utilizations (indexed by [`Component::ALL`] order).
    pub fn true_power(&self, config: FreqConfig, utilizations: &[f64; 7]) -> f64 {
        let vc = self.voltage(Domain::Core, config);
        let vm = self.voltage(Domain::Memory, config);
        let fc = config.core.as_hz();
        let fm = config.mem.as_hz();
        let c = &self.coeffs;

        let mut core_activity = c.core_idle_dyn;
        for (i, comp) in Component::CORE.iter().enumerate() {
            core_activity += c.gamma_core[i] * utilizations[comp.index()];
        }
        core_activity += c.gamma_hidden * self.hidden_utilization(utilizations);

        let u_dram = utilizations[Component::Dram.index()];
        c.core_static * vc
            + vc * vc * fc * core_activity
            + c.mem_static * vm
            + vm * vm * fm * (c.mem_idle_dyn + c.gamma_dram * u_dram)
    }

    /// The static (leakage) portion of the true power at a configuration
    /// — the part a thermal model scales with die temperature.
    pub fn static_power(&self, config: FreqConfig) -> f64 {
        self.coeffs.core_static * self.voltage(Domain::Core, config)
            + self.coeffs.mem_static * self.voltage(Domain::Memory, config)
    }

    /// The unobservable fabric utilization: interconnect and cache-control
    /// activity that tracks data movement but has no CUPTI event.
    pub fn hidden_utilization(&self, utilizations: &[f64; 7]) -> f64 {
        0.25 * utilizations[Component::L2Cache.index()]
            + 0.15 * utilizations[Component::SharedMem.index()]
            + 0.10 * utilizations[Component::Dram.index()]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpm_spec::devices;

    #[test]
    fn maxwell_constant_part_matches_fig5() {
        // Fig. 5B: the utilization-independent part contributes ~84 W at
        // the GTX Titan X default configuration.
        let t = GroundTruth::nominal(Architecture::Maxwell);
        let p = t.true_power(FreqConfig::from_mhz(975, 3505), &[0.0; 7]);
        assert!((p - 84.0).abs() < 4.0, "constant part {p} W");
    }

    #[test]
    fn maxwell_low_memory_constant_matches_fig10() {
        // Fig. 10: ~50 W constant at (975, 810).
        let t = GroundTruth::nominal(Architecture::Maxwell);
        let p = t.true_power(FreqConfig::from_mhz(975, 810), &[0.0; 7]);
        assert!((p - 50.0).abs() < 5.0, "constant part {p} W");
    }

    #[test]
    fn full_load_stays_near_tdp_on_all_devices() {
        // At the *default* configuration a saturating workload must stay
        // under TDP; at the fastest configuration it may exceed it
        // moderately — the situation the Fig. 9 footnote describes, where
        // a prediction above TDP forces a frequency fallback (the real
        // hardware would throttle; the simulator does not model
        // throttling, matching the model's view).
        let utils = [0.45, 0.45, 0.2, 0.3, 0.5, 0.8, 0.9];
        for spec in devices::all() {
            let t = GroundTruth::nominal(spec.architecture());
            let p_default = t.true_power(spec.default_config(), &utils);
            assert!(
                p_default < spec.tdp_w(),
                "{}: {p_default} W exceeds TDP at default clocks",
                spec.name()
            );
            assert!(
                p_default > spec.tdp_w() * 0.55,
                "{}: {p_default} W implausibly low",
                spec.name()
            );
            let p_max = t.true_power(spec.fastest_config(), &utils);
            assert!(
                p_max < spec.tdp_w() * 1.25,
                "{}: {p_max} W far beyond TDP",
                spec.name()
            );
        }
    }

    #[test]
    fn blackscholes_like_power_matches_fig2() {
        // Fig. 2A: BlackScholes ≈ 181 W at (975, 3505), ≈ 87 W at (975, 810).
        let t = GroundTruth::nominal(Architecture::Maxwell);
        // DRAM .85, L2 .47, SF .19, SP .25, INT .20 (Fig. 2 bars).
        let utils = [0.20, 0.25, 0.0, 0.19, 0.0, 0.47, 0.85];
        let hi = t.true_power(FreqConfig::from_mhz(975, 3505), &utils);
        assert!((hi - 181.0).abs() < 12.0, "high-mem power {hi} W");
        // At the low memory level the DRAM saturates; its utilization
        // cannot exceed 1.0.
        let mut low_utils = utils;
        low_utils[Component::Dram.index()] = 1.0;
        let lo = t.true_power(FreqConfig::from_mhz(975, 810), &low_utils);
        assert!((lo - 87.0).abs() < 12.0, "low-mem power {lo} W");
    }

    #[test]
    fn power_is_monotone_in_each_utilization() {
        let t = GroundTruth::nominal(Architecture::Pascal);
        let cfg = FreqConfig::from_mhz(1404, 5705);
        let base = t.true_power(cfg, &[0.2; 7]);
        for i in 0..7 {
            let mut u = [0.2; 7];
            u[i] = 0.8;
            assert!(t.true_power(cfg, &u) > base, "component {i}");
        }
    }

    #[test]
    fn power_increases_with_core_frequency_and_voltage() {
        let t = GroundTruth::nominal(Architecture::Maxwell);
        let u = [0.5, 0.5, 0.0, 0.2, 0.3, 0.4, 0.6];
        let mut prev = 0.0;
        for f in [595, 700, 810, 900, 1000, 1100, 1164] {
            let p = t.true_power(FreqConfig::from_mhz(f, 3505), &u);
            assert!(p > prev, "power must rise with fcore ({f} MHz: {p} W)");
            prev = p;
        }
    }

    #[test]
    fn nonlinearity_appears_above_voltage_break() {
        // Below the break, power grows linearly in fcore; above it the
        // V² term bends the curve upward (the Fig. 2 shape).
        let t = GroundTruth::nominal(Architecture::Maxwell);
        let u = [0.6, 0.6, 0.0, 0.2, 0.3, 0.4, 0.3];
        let p = |f: u32| t.true_power(FreqConfig::from_mhz(f, 3505), &u);
        let slope_low = (p(785) - p(595)) / 190.0;
        let slope_high = (p(1164) - p(975)) / 189.0;
        assert!(
            slope_high > 1.5 * slope_low,
            "high-frequency slope {slope_high} should exceed low-frequency slope {slope_low}"
        );
    }

    #[test]
    fn instances_differ_but_stay_close_to_nominal() {
        let nominal = GroundTruth::nominal(Architecture::Maxwell);
        let a = GroundTruth::for_architecture(Architecture::Maxwell, 1);
        let b = GroundTruth::for_architecture(Architecture::Maxwell, 2);
        assert_ne!(a, b);
        assert_ne!(a, nominal);
        let rel =
            (a.coeffs.gamma_dram - nominal.coeffs.gamma_dram).abs() / nominal.coeffs.gamma_dram;
        assert!(rel < 0.11);
        // Same seed reproduces the same instance.
        assert_eq!(a, GroundTruth::for_architecture(Architecture::Maxwell, 1));
    }

    #[test]
    fn device_scaling_leaves_paper_flagships_unchanged_and_shrinks_others() {
        for spec in devices::all() {
            assert_eq!(
                GroundTruth::for_device(&spec, 9),
                GroundTruth::for_architecture(spec.architecture(), 9),
                "{} is its family flagship",
                spec.name()
            );
        }
        let small = devices::gtx_980();
        let scaled = GroundTruth::for_device(&small, 9);
        let flagship = GroundTruth::for_architecture(small.architecture(), 9);
        let ratio = scaled.coeffs.core_idle_dyn / flagship.coeffs.core_idle_dyn;
        assert!((ratio - 16.0 / 24.0).abs() < 1e-12, "ratio {ratio}");
        // Voltage curves are a process property, not a size property.
        assert_eq!(scaled.core_voltage, flagship.core_voltage);
    }

    #[test]
    fn kepler_has_noisier_events_than_titans() {
        let k = GroundTruth::nominal(Architecture::Kepler);
        let m = GroundTruth::nominal(Architecture::Maxwell);
        let p = GroundTruth::nominal(Architecture::Pascal);
        assert!(k.event_noise_sd > 3.0 * m.event_noise_sd);
        assert!(k.event_noise_sd > 3.0 * p.event_noise_sd);
    }

    #[test]
    fn normalized_voltage_is_one_at_reference() {
        let t = GroundTruth::nominal(Architecture::Pascal);
        let reference = FreqConfig::from_mhz(1404, 5705);
        for d in Domain::ALL {
            assert_eq!(t.normalized_voltage(d, reference, reference), 1.0);
        }
        let low = FreqConfig::from_mhz(582, 5705);
        assert!(t.normalized_voltage(Domain::Core, low, reference) < 1.0);
        assert_eq!(t.normalized_voltage(Domain::Memory, low, reference), 1.0);
    }

    #[test]
    fn hidden_utilization_tracks_data_movement() {
        let t = GroundTruth::nominal(Architecture::Maxwell);
        let mut u = [0.0; 7];
        assert_eq!(t.hidden_utilization(&u), 0.0);
        u[Component::L2Cache.index()] = 1.0;
        u[Component::SharedMem.index()] = 1.0;
        u[Component::Dram.index()] = 1.0;
        assert!((t.hidden_utilization(&u) - 0.5).abs() < 1e-12);
    }
}
