//! Hidden voltage-frequency curves.

use gpm_spec::Mhz;
use serde::{Deserialize, Serialize};

/// A domain's true voltage as a function of its frequency.
///
/// Fig. 6 of the paper measures "two distinct regions for the core voltage
/// when scaling the core frequency: i) a constant voltage region, for
/// lower frequencies; and ii) after a specific frequency, the voltage
/// starts increasing linearly with the frequency". The memory domain
/// showed no measurable voltage change on any device. Both behaviours are
/// representable here; the estimator never sees these curves and must
/// recover them from power measurements alone.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum VoltageCurve {
    /// Constant voltage regardless of frequency (memory domains; also the
    /// Maxwell low-frequency core plateau in isolation).
    Constant {
        /// The fixed voltage in volts.
        volts: f64,
    },
    /// Flat at `vmin` up to `break_mhz`, then rising linearly with slope
    /// `volts_per_mhz` (the Fig. 6 shape).
    TwoRegime {
        /// Plateau voltage in volts.
        vmin: f64,
        /// Frequency where the linear region begins.
        break_mhz: u32,
        /// Slope of the linear region in volts per megahertz.
        volts_per_mhz: f64,
    },
}

impl VoltageCurve {
    /// True voltage in volts at frequency `f`.
    ///
    /// # Example
    ///
    /// ```
    /// use gpm_sim::VoltageCurve;
    /// use gpm_spec::Mhz;
    ///
    /// let curve = VoltageCurve::TwoRegime { vmin: 0.85, break_mhz: 810, volts_per_mhz: 0.00075 };
    /// assert_eq!(curve.volts_at(Mhz::new(700)), 0.85);          // plateau
    /// assert!(curve.volts_at(Mhz::new(1164)) > 1.1);            // linear region
    /// ```
    pub fn volts_at(&self, f: Mhz) -> f64 {
        match *self {
            VoltageCurve::Constant { volts } => volts,
            VoltageCurve::TwoRegime {
                vmin,
                break_mhz,
                volts_per_mhz,
            } => {
                if f.as_u32() <= break_mhz {
                    vmin
                } else {
                    vmin + volts_per_mhz * f64::from(f.as_u32() - break_mhz)
                }
            }
        }
    }

    /// Voltage normalized to a reference frequency: `V(f) / V(f_ref)`
    /// (the paper's `V̄`, Eq. 5).
    pub fn normalized_at(&self, f: Mhz, reference: Mhz) -> f64 {
        self.volts_at(f) / self.volts_at(reference)
    }

    /// The frequency where the linear region begins, if any.
    pub fn break_frequency(&self) -> Option<Mhz> {
        match *self {
            VoltageCurve::Constant { .. } => None,
            VoltageCurve::TwoRegime { break_mhz, .. } => Some(Mhz::new(break_mhz)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const CURVE: VoltageCurve = VoltageCurve::TwoRegime {
        vmin: 0.85,
        break_mhz: 810,
        volts_per_mhz: 0.00075,
    };

    #[test]
    fn plateau_below_break() {
        for f in [595, 700, 810] {
            assert_eq!(CURVE.volts_at(Mhz::new(f)), 0.85);
        }
    }

    #[test]
    fn linear_above_break() {
        let v1 = CURVE.volts_at(Mhz::new(900));
        let v2 = CURVE.volts_at(Mhz::new(1000));
        assert!((v2 - v1 - 0.00075 * 100.0).abs() < 1e-12);
    }

    #[test]
    fn monotone_nondecreasing_over_sweep() {
        let mut prev = 0.0;
        for f in (500..2000).step_by(25) {
            let v = CURVE.volts_at(Mhz::new(f));
            assert!(v >= prev);
            prev = v;
        }
    }

    #[test]
    fn normalization_is_one_at_reference() {
        let reference = Mhz::new(975);
        assert_eq!(CURVE.normalized_at(reference, reference), 1.0);
        assert!(CURVE.normalized_at(Mhz::new(595), reference) < 1.0);
        assert!(CURVE.normalized_at(Mhz::new(1164), reference) > 1.0);
    }

    #[test]
    fn constant_curve_ignores_frequency() {
        let c = VoltageCurve::Constant { volts: 1.35 };
        assert_eq!(c.volts_at(Mhz::new(810)), 1.35);
        assert_eq!(c.volts_at(Mhz::new(4005)), 1.35);
        assert_eq!(c.normalized_at(Mhz::new(810), Mhz::new(3505)), 1.0);
        assert_eq!(c.break_frequency(), None);
    }

    #[test]
    fn break_frequency_is_reported() {
        assert_eq!(CURVE.break_frequency(), Some(Mhz::new(810)));
    }
}

#[cfg(test)]
mod prop_tests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        #[test]
        fn two_regime_curves_are_monotone_for_any_parameters(
            vmin in 0.5f64..1.2,
            break_mhz in 500u32..1500,
            slope in 0.0f64..0.002,
            f1 in 100u32..3000,
            f2 in 100u32..3000,
        ) {
            let curve = VoltageCurve::TwoRegime { vmin, break_mhz, volts_per_mhz: slope };
            let (lo, hi) = if f1 <= f2 { (f1, f2) } else { (f2, f1) };
            prop_assert!(curve.volts_at(Mhz::new(lo)) <= curve.volts_at(Mhz::new(hi)) + 1e-12);
            prop_assert!(curve.volts_at(Mhz::new(lo)) >= vmin);
        }

        #[test]
        fn normalization_is_scale_free(
            vmin in 0.5f64..1.2,
            break_mhz in 500u32..1500,
            slope in 0.00001f64..0.002,
            f in 100u32..3000,
            fref in 100u32..3000,
        ) {
            let curve = VoltageCurve::TwoRegime { vmin, break_mhz, volts_per_mhz: slope };
            let scaled = VoltageCurve::TwoRegime {
                vmin: vmin * 2.0,
                break_mhz,
                volts_per_mhz: slope * 2.0,
            };
            let a = curve.normalized_at(Mhz::new(f), Mhz::new(fref));
            let b = scaled.normalized_at(Mhz::new(f), Mhz::new(fref));
            prop_assert!((a - b).abs() < 1e-9, "normalized curves must agree: {a} vs {b}");
        }
    }
}
