//! Hidden voltage-frequency curves.

use gpm_json::{FromJson, Json, JsonError, ToJson};
use gpm_spec::Mhz;

/// A domain's true voltage as a function of its frequency.
///
/// Fig. 6 of the paper measures "two distinct regions for the core voltage
/// when scaling the core frequency: i) a constant voltage region, for
/// lower frequencies; and ii) after a specific frequency, the voltage
/// starts increasing linearly with the frequency". The memory domain
/// showed no measurable voltage change on any device. Both behaviours are
/// representable here; the estimator never sees these curves and must
/// recover them from power measurements alone.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum VoltageCurve {
    /// Constant voltage regardless of frequency (memory domains; also the
    /// Maxwell low-frequency core plateau in isolation).
    Constant {
        /// The fixed voltage in volts.
        volts: f64,
    },
    /// Flat at `vmin` up to `break_mhz`, then rising linearly with slope
    /// `volts_per_mhz` (the Fig. 6 shape).
    TwoRegime {
        /// Plateau voltage in volts.
        vmin: f64,
        /// Frequency where the linear region begins.
        break_mhz: u32,
        /// Slope of the linear region in volts per megahertz.
        volts_per_mhz: f64,
    },
}

// Externally tagged, matching the serialization of struct-variant enums:
// `{"Constant": {"volts": ...}}` / `{"TwoRegime": {...}}`.
impl ToJson for VoltageCurve {
    fn to_json(&self) -> Json {
        match *self {
            VoltageCurve::Constant { volts } => Json::Obj(vec![(
                "Constant".to_string(),
                Json::Obj(vec![("volts".to_string(), volts.to_json())]),
            )]),
            VoltageCurve::TwoRegime {
                vmin,
                break_mhz,
                volts_per_mhz,
            } => Json::Obj(vec![(
                "TwoRegime".to_string(),
                Json::Obj(vec![
                    ("vmin".to_string(), vmin.to_json()),
                    ("break_mhz".to_string(), break_mhz.to_json()),
                    ("volts_per_mhz".to_string(), volts_per_mhz.to_json()),
                ]),
            )]),
        }
    }
}

impl FromJson for VoltageCurve {
    fn from_json(json: &Json) -> Result<Self, JsonError> {
        let fields = json
            .as_obj()
            .ok_or_else(|| JsonError::expected("VoltageCurve object", json))?;
        let (tag, payload) = fields
            .first()
            .ok_or_else(|| JsonError::new("empty object is not a VoltageCurve"))?;
        let inner = payload
            .as_obj()
            .ok_or_else(|| JsonError::expected("VoltageCurve payload object", payload))?;
        let req = |name: &str| -> Result<&Json, JsonError> {
            gpm_json::field(inner, name).ok_or_else(|| JsonError::missing_field(name))
        };
        match tag.as_str() {
            "Constant" => Ok(VoltageCurve::Constant {
                volts: f64::from_json(req("volts")?)?,
            }),
            "TwoRegime" => Ok(VoltageCurve::TwoRegime {
                vmin: f64::from_json(req("vmin")?)?,
                break_mhz: u32::from_json(req("break_mhz")?)?,
                volts_per_mhz: f64::from_json(req("volts_per_mhz")?)?,
            }),
            other => Err(JsonError::new(format!(
                "unknown VoltageCurve variant `{other}`"
            ))),
        }
    }
}

impl VoltageCurve {
    /// True voltage in volts at frequency `f`.
    ///
    /// # Example
    ///
    /// ```
    /// use gpm_sim::VoltageCurve;
    /// use gpm_spec::Mhz;
    ///
    /// let curve = VoltageCurve::TwoRegime { vmin: 0.85, break_mhz: 810, volts_per_mhz: 0.00075 };
    /// assert_eq!(curve.volts_at(Mhz::new(700)), 0.85);          // plateau
    /// assert!(curve.volts_at(Mhz::new(1164)) > 1.1);            // linear region
    /// ```
    pub fn volts_at(&self, f: Mhz) -> f64 {
        match *self {
            VoltageCurve::Constant { volts } => volts,
            VoltageCurve::TwoRegime {
                vmin,
                break_mhz,
                volts_per_mhz,
            } => {
                if f.as_u32() <= break_mhz {
                    vmin
                } else {
                    vmin + volts_per_mhz * f64::from(f.as_u32() - break_mhz)
                }
            }
        }
    }

    /// Voltage normalized to a reference frequency: `V(f) / V(f_ref)`
    /// (the paper's `V̄`, Eq. 5).
    pub fn normalized_at(&self, f: Mhz, reference: Mhz) -> f64 {
        self.volts_at(f) / self.volts_at(reference)
    }

    /// The frequency where the linear region begins, if any.
    pub fn break_frequency(&self) -> Option<Mhz> {
        match *self {
            VoltageCurve::Constant { .. } => None,
            VoltageCurve::TwoRegime { break_mhz, .. } => Some(Mhz::new(break_mhz)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const CURVE: VoltageCurve = VoltageCurve::TwoRegime {
        vmin: 0.85,
        break_mhz: 810,
        volts_per_mhz: 0.00075,
    };

    #[test]
    fn plateau_below_break() {
        for f in [595, 700, 810] {
            assert_eq!(CURVE.volts_at(Mhz::new(f)), 0.85);
        }
    }

    #[test]
    fn linear_above_break() {
        let v1 = CURVE.volts_at(Mhz::new(900));
        let v2 = CURVE.volts_at(Mhz::new(1000));
        assert!((v2 - v1 - 0.00075 * 100.0).abs() < 1e-12);
    }

    #[test]
    fn monotone_nondecreasing_over_sweep() {
        let mut prev = 0.0;
        for f in (500..2000).step_by(25) {
            let v = CURVE.volts_at(Mhz::new(f));
            assert!(v >= prev);
            prev = v;
        }
    }

    #[test]
    fn normalization_is_one_at_reference() {
        let reference = Mhz::new(975);
        assert_eq!(CURVE.normalized_at(reference, reference), 1.0);
        assert!(CURVE.normalized_at(Mhz::new(595), reference) < 1.0);
        assert!(CURVE.normalized_at(Mhz::new(1164), reference) > 1.0);
    }

    #[test]
    fn constant_curve_ignores_frequency() {
        let c = VoltageCurve::Constant { volts: 1.35 };
        assert_eq!(c.volts_at(Mhz::new(810)), 1.35);
        assert_eq!(c.volts_at(Mhz::new(4005)), 1.35);
        assert_eq!(c.normalized_at(Mhz::new(810), Mhz::new(3505)), 1.0);
        assert_eq!(c.break_frequency(), None);
    }

    #[test]
    fn break_frequency_is_reported() {
        assert_eq!(CURVE.break_frequency(), Some(Mhz::new(810)));
    }
}

#[cfg(test)]
mod prop_tests {
    use super::*;

    #[test]
    fn two_regime_curves_are_monotone_for_any_parameters() {
        gpm_check::check("two_regime_curves_are_monotone_for_any_parameters", |g| {
            let vmin = g.f64_in(0.5, 1.2);
            let break_mhz = g.u64_in(500..1500) as u32;
            let slope = g.f64_in(0.0, 0.002);
            let f1 = g.u64_in(100..3000) as u32;
            let f2 = g.u64_in(100..3000) as u32;
            let curve = VoltageCurve::TwoRegime {
                vmin,
                break_mhz,
                volts_per_mhz: slope,
            };
            let (lo, hi) = if f1 <= f2 { (f1, f2) } else { (f2, f1) };
            assert!(curve.volts_at(Mhz::new(lo)) <= curve.volts_at(Mhz::new(hi)) + 1e-12);
            assert!(curve.volts_at(Mhz::new(lo)) >= vmin);
        });
    }

    #[test]
    fn normalization_is_scale_free() {
        gpm_check::check("normalization_is_scale_free", |g| {
            let vmin = g.f64_in(0.5, 1.2);
            let break_mhz = g.u64_in(500..1500) as u32;
            let slope = g.f64_in(0.00001, 0.002);
            let f = g.u64_in(100..3000) as u32;
            let fref = g.u64_in(100..3000) as u32;
            let curve = VoltageCurve::TwoRegime {
                vmin,
                break_mhz,
                volts_per_mhz: slope,
            };
            let scaled = VoltageCurve::TwoRegime {
                vmin: vmin * 2.0,
                break_mhz,
                volts_per_mhz: slope * 2.0,
            };
            let a = curve.normalized_at(Mhz::new(f), Mhz::new(fref));
            let b = scaled.normalized_at(Mhz::new(f), Mhz::new(fref));
            assert!(
                (a - b).abs() < 1e-9,
                "normalized curves must agree: {a} vs {b}"
            );
        });
    }

    #[test]
    fn json_round_trips_both_variants() {
        for curve in [
            VoltageCurve::Constant { volts: 1.35 },
            VoltageCurve::TwoRegime {
                vmin: 0.85,
                break_mhz: 810,
                volts_per_mhz: 0.00075,
            },
        ] {
            let text = gpm_json::to_string(&curve).unwrap();
            let back: VoltageCurve = gpm_json::from_str(&text).unwrap();
            assert_eq!(back, curve, "{text}");
        }
        assert_eq!(
            gpm_json::to_string(&VoltageCurve::Constant { volts: 1.35 }).unwrap(),
            r#"{"Constant":{"volts":1.35}}"#
        );
    }
}
