//! Randomized cross-checks: arbitrary valid kernels keep every simulator
//! invariant across the full V-F grid.

use gpm_sim::{GroundTruth, SimulatedGpu};
use gpm_spec::{devices, EventTable};
use gpm_workloads::random_kernel;

#[test]
fn random_kernels_keep_simulator_invariants() {
    for spec in devices::all() {
        let mut gpu = SimulatedGpu::new(spec.clone(), 2024);
        let grid = spec.vf_grid();
        for seed in 0..60u64 {
            let kernel = random_kernel(&spec, seed);
            let config = grid[(seed as usize * 7) % grid.len()];
            gpu.set_clocks(config).expect("grid configs are valid");

            let exec = gpu.execute(&kernel);
            assert!(exec.duration_s > 0.0);
            for (i, &u) in exec.utilizations.iter().enumerate() {
                assert!(
                    (0.0..=1.0 + 1e-9).contains(&u),
                    "{} seed {seed} comp {i} at {config}: {u}",
                    spec.name()
                );
            }

            let m = gpu.measure_power(&kernel).expect("measurement succeeds");
            assert!(m.watts > 20.0, "{} seed {seed}: {} W", spec.name(), m.watts);
            assert!(
                m.watts < spec.tdp_w() * 1.3,
                "{} seed {seed}: {} W",
                spec.name(),
                m.watts
            );

            let events = gpu.collect_events(&kernel);
            let table = EventTable::for_architecture(spec.architecture());
            for ev in table.all_events() {
                assert!(events.counts.contains_key(&ev), "missing {ev}");
            }
        }
    }
}

#[test]
fn noise_free_power_is_monotone_in_core_frequency_for_any_kernel() {
    let spec = devices::gtx_titan_x();
    let mut truth = GroundTruth::nominal(spec.architecture());
    truth.sensor_noise_sd = 0.0;
    truth.event_noise_sd = 0.0;
    let mut gpu = SimulatedGpu::with_truth(spec.clone(), truth, 0);
    for seed in 0..25u64 {
        let kernel = random_kernel(&spec, seed);
        let mut prev = 0.0;
        for &core in spec.core_freqs().iter().rev() {
            gpu.set_clocks(gpm_spec::FreqConfig::new(core, gpm_spec::Mhz::new(3505)))
                .expect("valid config");
            let w = gpu
                .measure_power(&kernel)
                .expect("measurement succeeds")
                .watts;
            assert!(
                w + 1e-6 >= prev,
                "seed {seed}: power fell {prev} -> {w} at {core}"
            );
            prev = w;
        }
    }
}

#[test]
fn the_full_pipeline_works_on_the_non_paper_device() {
    // The GTX 980 preset is not one of the paper's three devices; the
    // whole stack must still run on it (generality check).
    let spec = devices::gtx_980();
    let mut gpu = SimulatedGpu::new(spec.clone(), 55);
    let suite = gpm_workloads::microbenchmark_suite(&spec);
    assert_eq!(suite.len(), 83);
    for kernel in suite.iter().take(10) {
        let m = gpu.measure_power(kernel).expect("measurement succeeds");
        assert!(
            m.watts > 15.0 && m.watts < spec.tdp_w() * 1.2,
            "{} W",
            m.watts
        );
    }
}
