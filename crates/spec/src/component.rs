//! GPU architectural components and voltage-frequency domains.

use gpm_json::impl_json;
use std::fmt;

/// An independent voltage-frequency domain of the GPU (Section II).
///
/// The paper's model (Eq. 3) sums the power of `N_{V-F}` independent
/// domains; on the studied NVIDIA devices there are two. The L2 cache
/// belongs to the *core* domain ("the core domain, which includes the L2
/// cache", Section III-A), while only the DRAM is clocked by the memory
/// domain.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Domain {
    /// Core (graphics) domain: SMs, shared memory, L2 cache.
    Core,
    /// Memory domain: device DRAM.
    Memory,
}

impl_json!(
    enum Domain {
        Core,
        Memory,
    }
);

impl Domain {
    /// All domains, in model order (core first, as in Eqs. 6-7).
    pub const ALL: [Domain; 2] = [Domain::Core, Domain::Memory];
}

impl fmt::Display for Domain {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Domain::Core => write!(f, "core"),
            Domain::Memory => write!(f, "memory"),
        }
    }
}

/// A GPU hardware component whose utilization enters the power model.
///
/// Section III-B selects the components "with the greatest contribution to
/// the power consumption variations": the integer, single- and
/// double-precision and special-function execution units, the shared
/// memory, the L2 cache and the DRAM. Utilizations of compute units follow
/// Eq. 8 (issued warps vs. peak issue rate); memory levels follow Eq. 9
/// (achieved vs. peak bandwidth).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Component {
    /// Integer arithmetic units (share issue ports with SP on the studied devices).
    Int,
    /// Single-precision floating-point units ("CUDA cores").
    Sp,
    /// Double-precision floating-point units.
    Dp,
    /// Special-function units (transcendentals: `sin`, `cos`, `log`, ...).
    Sf,
    /// Per-SM shared memory (banked scratchpad).
    SharedMem,
    /// Device-level L2 cache (core domain).
    L2Cache,
    /// Device DRAM (memory domain).
    Dram,
}

impl_json!(
    enum Component {
        Int,
        Sp,
        Dp,
        Sf,
        SharedMem,
        L2Cache,
        Dram,
    }
);

impl Component {
    /// All modeled components, in the canonical order used throughout the
    /// workspace (compute units, then memory levels, then DRAM).
    pub const ALL: [Component; 7] = [
        Component::Int,
        Component::Sp,
        Component::Dp,
        Component::Sf,
        Component::SharedMem,
        Component::L2Cache,
        Component::Dram,
    ];

    /// The components that belong to the core V-F domain, in order.
    pub const CORE: [Component; 6] = [
        Component::Int,
        Component::Sp,
        Component::Dp,
        Component::Sf,
        Component::SharedMem,
        Component::L2Cache,
    ];

    /// Returns the V-F domain this component is clocked by.
    ///
    /// # Example
    ///
    /// ```
    /// use gpm_spec::{Component, Domain};
    ///
    /// assert_eq!(Component::L2Cache.domain(), Domain::Core);
    /// assert_eq!(Component::Dram.domain(), Domain::Memory);
    /// ```
    pub fn domain(self) -> Domain {
        match self {
            Component::Dram => Domain::Memory,
            _ => Domain::Core,
        }
    }

    /// `true` for execution units whose utilization is defined by warp
    /// issue counts (Eq. 8), `false` for memory levels (Eq. 9).
    pub fn is_compute_unit(self) -> bool {
        matches!(
            self,
            Component::Int | Component::Sp | Component::Dp | Component::Sf
        )
    }

    /// Index of this component in [`Component::ALL`].
    pub fn index(self) -> usize {
        Component::ALL
            .iter()
            .position(|&c| c == self)
            .expect("component present in ALL")
    }

    /// Short label used in figures and reports (matches the paper's legends).
    pub fn label(self) -> &'static str {
        match self {
            Component::Int => "INT Unit",
            Component::Sp => "SP Unit",
            Component::Dp => "DP Unit",
            Component::Sf => "SF Unit",
            Component::SharedMem => "Shared Memory",
            Component::L2Cache => "L2 Cache",
            Component::Dram => "DRAM",
        }
    }
}

impl fmt::Display for Component {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn domain_assignment_matches_paper() {
        // Section III-A: L2 is in the core domain; only DRAM is in memory.
        for c in Component::ALL {
            match c {
                Component::Dram => assert_eq!(c.domain(), Domain::Memory),
                _ => assert_eq!(c.domain(), Domain::Core),
            }
        }
    }

    #[test]
    fn core_list_is_all_minus_dram_in_order() {
        let derived: Vec<Component> = Component::ALL
            .into_iter()
            .filter(|c| c.domain() == Domain::Core)
            .collect();
        assert_eq!(derived, Component::CORE.to_vec());
    }

    #[test]
    fn compute_units_are_the_four_alus() {
        let units: Vec<Component> = Component::ALL
            .into_iter()
            .filter(|c| c.is_compute_unit())
            .collect();
        assert_eq!(
            units,
            vec![Component::Int, Component::Sp, Component::Dp, Component::Sf]
        );
    }

    #[test]
    fn index_round_trips() {
        for (i, c) in Component::ALL.into_iter().enumerate() {
            assert_eq!(c.index(), i);
            assert_eq!(Component::ALL[c.index()], c);
        }
    }

    #[test]
    fn labels_are_nonempty_and_unique() {
        let labels: Vec<&str> = Component::ALL.iter().map(|c| c.label()).collect();
        for l in &labels {
            assert!(!l.is_empty());
        }
        let mut dedup = labels.clone();
        dedup.sort_unstable();
        dedup.dedup();
        assert_eq!(dedup.len(), labels.len());
    }
}
