//! Device specification: the publicly known characteristics of a GPU.

use crate::{Component, FreqConfig, Mhz, SpecError};
use gpm_json::impl_json;
use std::fmt;

/// NVIDIA microarchitecture generation (Table II, "Base architecture",
/// extended with the post-paper datacenter families behind the synthetic
/// fleet device classes).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Architecture {
    /// Kepler (e.g. Tesla K40c, compute capability 3.5).
    Kepler,
    /// Maxwell (e.g. GTX Titan X, compute capability 5.2).
    Maxwell,
    /// Pascal (e.g. Titan Xp, compute capability 6.1).
    Pascal,
    /// Volta (e.g. the synthetic V100-class preset, compute capability 7.0).
    Volta,
    /// Ampere (e.g. the synthetic A100-class preset, compute capability 8.0).
    Ampere,
    /// Hopper (e.g. the synthetic H100-class preset, compute capability 9.0).
    Hopper,
}

impl_json!(
    enum Architecture {
        Kepler,
        Maxwell,
        Pascal,
        Volta,
        Ampere,
        Hopper,
    }
);

impl fmt::Display for Architecture {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Architecture::Kepler => write!(f, "Kepler"),
            Architecture::Maxwell => write!(f, "Maxwell"),
            Architecture::Pascal => write!(f, "Pascal"),
            Architecture::Volta => write!(f, "Volta"),
            Architecture::Ampere => write!(f, "Ampere"),
            Architecture::Hopper => write!(f, "Hopper"),
        }
    }
}

/// The publicly known specification of a GPU device (Table II).
///
/// This is the information available to the *modeler*: driver frequency
/// tables, unit counts, warp size, bus width and TDP. It deliberately does
/// **not** include the L2 peak bandwidth — the paper shows it "cannot be
/// computed as trivially" and determines it experimentally with dedicated
/// microbenchmarks — nor any voltage or power coefficient, which are
/// exactly what the model estimates.
///
/// Construct presets via [`crate::devices`] or custom devices via
/// [`DeviceSpec::builder`].
///
/// # Example
///
/// ```
/// use gpm_spec::{devices, Component};
///
/// let gpu = devices::tesla_k40c();
/// assert_eq!(gpu.units_per_sm(Component::Dp)?, 64);
/// assert_eq!(gpu.mem_freqs().len(), 1); // single non-idle memory level
/// # Ok::<(), gpm_spec::SpecError>(())
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct DeviceSpec {
    name: String,
    architecture: Architecture,
    compute_capability: (u8, u8),
    core_freqs: Vec<Mhz>,
    mem_freqs: Vec<Mhz>,
    default_config: FreqConfig,
    warp_size: u32,
    num_sms: u32,
    mem_bus_bytes_per_cycle: u32,
    shared_banks: u32,
    shared_bank_bytes: u32,
    int_sp_units_per_sm: u32,
    dp_units_per_sm: u32,
    sf_units_per_sm: u32,
    tdp_w: f64,
    power_refresh_ms: f64,
}

impl_json!(struct DeviceSpec {
    name,
    architecture,
    compute_capability,
    core_freqs,
    mem_freqs,
    default_config,
    warp_size,
    num_sms,
    mem_bus_bytes_per_cycle,
    shared_banks,
    shared_bank_bytes,
    int_sp_units_per_sm,
    dp_units_per_sm,
    sf_units_per_sm,
    tdp_w,
    power_refresh_ms,
});

impl DeviceSpec {
    /// Starts building a custom device specification.
    pub fn builder() -> DeviceSpecBuilder {
        DeviceSpecBuilder::default()
    }

    /// Marketing name of the device (e.g. `"GTX Titan X"`).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Microarchitecture generation.
    pub fn architecture(&self) -> Architecture {
        self.architecture
    }

    /// CUDA compute capability `(major, minor)`.
    pub fn compute_capability(&self) -> (u8, u8) {
        self.compute_capability
    }

    /// Supported core frequencies, strictly decreasing (driver table order).
    pub fn core_freqs(&self) -> &[Mhz] {
        &self.core_freqs
    }

    /// Supported non-idle memory frequencies, strictly decreasing.
    pub fn mem_freqs(&self) -> &[Mhz] {
        &self.mem_freqs
    }

    /// The device's default (reference) frequency configuration.
    pub fn default_config(&self) -> FreqConfig {
        self.default_config
    }

    /// Number of threads per warp (32 on all studied devices).
    pub fn warp_size(&self) -> u32 {
        self.warp_size
    }

    /// Number of streaming multiprocessors.
    pub fn num_sms(&self) -> u32 {
        self.num_sms
    }

    /// DRAM bus width in bytes transferred per memory-domain cycle
    /// (Table II lists 48 B for all three devices).
    pub fn mem_bus_bytes_per_cycle(&self) -> u32 {
        self.mem_bus_bytes_per_cycle
    }

    /// Number of shared-memory banks per SM.
    pub fn shared_banks(&self) -> u32 {
        self.shared_banks
    }

    /// Bytes served per shared-memory bank per cycle.
    pub fn shared_bank_bytes(&self) -> u32 {
        self.shared_bank_bytes
    }

    /// Thermal design power in watts.
    pub fn tdp_w(&self) -> f64 {
        self.tdp_w
    }

    /// Refresh period of the on-board power sensor in milliseconds
    /// (35 ms Titan Xp, 100 ms GTX Titan X, 15 ms Tesla K40c; Section V-A).
    pub fn power_refresh_ms(&self) -> f64 {
        self.power_refresh_ms
    }

    /// Number of execution units of the given type per SM.
    ///
    /// # Errors
    ///
    /// Returns [`SpecError::NotAComputeUnit`] for memory-level components,
    /// whose capacity is a bandwidth, not a unit count.
    pub fn units_per_sm(&self, component: Component) -> Result<u32, SpecError> {
        match component {
            Component::Int | Component::Sp => Ok(self.int_sp_units_per_sm),
            Component::Dp => Ok(self.dp_units_per_sm),
            Component::Sf => Ok(self.sf_units_per_sm),
            other => Err(SpecError::NotAComputeUnit(other)),
        }
    }

    /// Peak warp-instruction throughput of a compute unit across the whole
    /// device, in warp-instructions per second, at core frequency `fcore`.
    ///
    /// A unit type with `UnitsPerSM` lanes retires
    /// `UnitsPerSM / WarpSize` warp-instructions per SM per cycle
    /// (the denominator of Eq. 8).
    ///
    /// # Errors
    ///
    /// Returns [`SpecError::NotAComputeUnit`] for memory-level components.
    pub fn peak_warp_throughput(&self, component: Component, fcore: Mhz) -> Result<f64, SpecError> {
        let units = self.units_per_sm(component)?;
        Ok(fcore.as_hz() * f64::from(units) / f64::from(self.warp_size) * f64::from(self.num_sms))
    }

    /// Peak DRAM bandwidth in bytes per second at memory frequency `fmem`
    /// (`PeakBand = f · Bytes/Cycle`, Section III-C).
    pub fn peak_dram_bandwidth(&self, fmem: Mhz) -> f64 {
        fmem.as_hz() * f64::from(self.mem_bus_bytes_per_cycle)
    }

    /// Peak aggregate shared-memory bandwidth in bytes per second at core
    /// frequency `fcore`: every bank serves one word per cycle on every SM.
    pub fn peak_shared_bandwidth(&self, fcore: Mhz) -> f64 {
        fcore.as_hz()
            * f64::from(self.shared_banks)
            * f64::from(self.shared_bank_bytes)
            * f64::from(self.num_sms)
    }

    /// A *nominal* L2 bytes-per-core-cycle figure for workload sizing.
    ///
    /// The paper stresses that the true L2 peak bandwidth "cannot be
    /// computed as trivially" from public specifications and determines it
    /// experimentally with dedicated microbenchmarks. This nominal figure
    /// exists only so that workload generators can size L2 traffic; the
    /// *model* must never use it — it discovers the effective peak from
    /// the L2 microbenchmark measurements, exactly as the paper does.
    pub fn nominal_l2_bytes_per_cycle(&self) -> u32 {
        match self.architecture {
            Architecture::Kepler => 512,
            Architecture::Maxwell => 640,
            Architecture::Pascal => 1024,
            Architecture::Volta => 2048,
            Architecture::Ampere => 4096,
            Architecture::Hopper => 6144,
        }
    }

    /// All supported V-F configurations: the cross product of the memory
    /// and core frequency tables, memory-major, descending (Table II grid).
    pub fn vf_grid(&self) -> Vec<FreqConfig> {
        let mut grid = Vec::with_capacity(self.mem_freqs.len() * self.core_freqs.len());
        for &mem in &self.mem_freqs {
            for &core in &self.core_freqs {
                grid.push(FreqConfig::new(core, mem));
            }
        }
        grid
    }

    /// `true` if `config` is in the device's frequency tables.
    pub fn supports(&self, config: FreqConfig) -> bool {
        self.core_freqs.contains(&config.core) && self.mem_freqs.contains(&config.mem)
    }

    /// Validates that `config` is supported, for use at API boundaries.
    ///
    /// # Errors
    ///
    /// Returns [`SpecError::UnsupportedConfig`] when the configuration is
    /// not in the device tables.
    pub fn check_config(&self, config: FreqConfig) -> Result<(), SpecError> {
        if self.supports(config) {
            Ok(())
        } else {
            Err(SpecError::UnsupportedConfig(config))
        }
    }

    /// The highest-performance configuration (max core, max memory), used
    /// to size kernel repetition counts in the measurement protocol.
    pub fn fastest_config(&self) -> FreqConfig {
        FreqConfig::new(self.core_freqs[0], self.mem_freqs[0])
    }

    /// The closest supported core frequency *not above* `limit` paired with
    /// `mem`, used for TDP-respecting frequency fallback (Fig. 9 note).
    /// Returns `None` if every core level exceeds `limit`.
    pub fn core_level_at_or_below(&self, limit: Mhz, mem: Mhz) -> Option<FreqConfig> {
        self.core_freqs
            .iter()
            .copied()
            .find(|&f| f <= limit)
            .map(|core| FreqConfig::new(core, mem))
    }
}

impl fmt::Display for DeviceSpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} ({}, CC {}.{}, {} SMs, TDP {} W)",
            self.name,
            self.architecture,
            self.compute_capability.0,
            self.compute_capability.1,
            self.num_sms,
            self.tdp_w
        )
    }
}

/// Builder for [`DeviceSpec`], validating table ordering and defaults.
///
/// # Example
///
/// ```
/// use gpm_spec::{Architecture, DeviceSpec, FreqConfig, Mhz};
///
/// let dev = DeviceSpec::builder()
///     .name("Toy GPU")
///     .architecture(Architecture::Maxwell)
///     .compute_capability(5, 0)
///     .core_freqs([1000, 900, 800])
///     .mem_freqs([2000, 1000])
///     .default_config(FreqConfig::from_mhz(900, 2000))
///     .num_sms(4)
///     .int_sp_units_per_sm(128)
///     .dp_units_per_sm(4)
///     .sf_units_per_sm(32)
///     .tdp_w(120.0)
///     .build()?;
/// assert!(dev.supports(FreqConfig::from_mhz(800, 1000)));
/// # Ok::<(), gpm_spec::SpecError>(())
/// ```
#[derive(Debug, Clone, Default)]
pub struct DeviceSpecBuilder {
    name: Option<String>,
    architecture: Option<Architecture>,
    compute_capability: (u8, u8),
    core_freqs: Vec<Mhz>,
    mem_freqs: Vec<Mhz>,
    default_config: Option<FreqConfig>,
    warp_size: u32,
    num_sms: Option<u32>,
    mem_bus_bytes_per_cycle: u32,
    shared_banks: u32,
    shared_bank_bytes: u32,
    int_sp_units_per_sm: Option<u32>,
    dp_units_per_sm: Option<u32>,
    sf_units_per_sm: Option<u32>,
    tdp_w: Option<f64>,
    power_refresh_ms: f64,
}

impl DeviceSpecBuilder {
    /// Sets the device name.
    pub fn name(mut self, name: impl Into<String>) -> Self {
        self.name = Some(name.into());
        self
    }

    /// Sets the microarchitecture.
    pub fn architecture(mut self, arch: Architecture) -> Self {
        self.architecture = Some(arch);
        self
    }

    /// Sets the compute capability.
    pub fn compute_capability(mut self, major: u8, minor: u8) -> Self {
        self.compute_capability = (major, minor);
        self
    }

    /// Sets the core frequency table in megahertz (strictly decreasing).
    pub fn core_freqs(mut self, mhz: impl IntoIterator<Item = u32>) -> Self {
        self.core_freqs = mhz.into_iter().map(Mhz::new).collect();
        self
    }

    /// Sets the memory frequency table in megahertz (strictly decreasing).
    pub fn mem_freqs(mut self, mhz: impl IntoIterator<Item = u32>) -> Self {
        self.mem_freqs = mhz.into_iter().map(Mhz::new).collect();
        self
    }

    /// Sets the default (reference) configuration.
    pub fn default_config(mut self, config: FreqConfig) -> Self {
        self.default_config = Some(config);
        self
    }

    /// Sets the warp size (defaults to 32).
    pub fn warp_size(mut self, warp_size: u32) -> Self {
        self.warp_size = warp_size;
        self
    }

    /// Sets the SM count.
    pub fn num_sms(mut self, n: u32) -> Self {
        self.num_sms = Some(n);
        self
    }

    /// Sets the DRAM bus width in bytes per cycle (defaults to 48).
    pub fn mem_bus_bytes_per_cycle(mut self, bytes: u32) -> Self {
        self.mem_bus_bytes_per_cycle = bytes;
        self
    }

    /// Sets the shared-memory bank count per SM (defaults to 32).
    pub fn shared_banks(mut self, banks: u32) -> Self {
        self.shared_banks = banks;
        self
    }

    /// Sets the bytes per shared bank per cycle (defaults to 4).
    pub fn shared_bank_bytes(mut self, bytes: u32) -> Self {
        self.shared_bank_bytes = bytes;
        self
    }

    /// Sets the number of fused INT/SP lanes per SM.
    pub fn int_sp_units_per_sm(mut self, n: u32) -> Self {
        self.int_sp_units_per_sm = Some(n);
        self
    }

    /// Sets the number of DP lanes per SM.
    pub fn dp_units_per_sm(mut self, n: u32) -> Self {
        self.dp_units_per_sm = Some(n);
        self
    }

    /// Sets the number of SF lanes per SM.
    pub fn sf_units_per_sm(mut self, n: u32) -> Self {
        self.sf_units_per_sm = Some(n);
        self
    }

    /// Sets the thermal design power in watts.
    pub fn tdp_w(mut self, tdp: f64) -> Self {
        self.tdp_w = Some(tdp);
        self
    }

    /// Sets the power-sensor refresh period in milliseconds (defaults to 50).
    pub fn power_refresh_ms(mut self, ms: f64) -> Self {
        self.power_refresh_ms = ms;
        self
    }

    /// Finalizes the specification.
    ///
    /// # Errors
    ///
    /// Returns [`SpecError::MissingField`] if a required field was not set,
    /// [`SpecError::UnsortedTable`] if a frequency table is not strictly
    /// decreasing, or [`SpecError::DefaultNotInTable`] if the default
    /// configuration is not covered by the tables.
    pub fn build(self) -> Result<DeviceSpec, SpecError> {
        let name = self.name.ok_or(SpecError::MissingField("name"))?;
        let architecture = self
            .architecture
            .ok_or(SpecError::MissingField("architecture"))?;
        if self.core_freqs.is_empty() {
            return Err(SpecError::MissingField("core_freqs"));
        }
        if self.mem_freqs.is_empty() {
            return Err(SpecError::MissingField("mem_freqs"));
        }
        if !self.core_freqs.windows(2).all(|w| w[0] > w[1]) {
            return Err(SpecError::UnsortedTable("core_freqs"));
        }
        if !self.mem_freqs.windows(2).all(|w| w[0] > w[1]) {
            return Err(SpecError::UnsortedTable("mem_freqs"));
        }
        let default_config = self
            .default_config
            .ok_or(SpecError::MissingField("default_config"))?;
        let spec = DeviceSpec {
            name,
            architecture,
            compute_capability: self.compute_capability,
            core_freqs: self.core_freqs,
            mem_freqs: self.mem_freqs,
            default_config,
            warp_size: if self.warp_size == 0 {
                32
            } else {
                self.warp_size
            },
            num_sms: self.num_sms.ok_or(SpecError::MissingField("num_sms"))?,
            mem_bus_bytes_per_cycle: if self.mem_bus_bytes_per_cycle == 0 {
                48
            } else {
                self.mem_bus_bytes_per_cycle
            },
            shared_banks: if self.shared_banks == 0 {
                32
            } else {
                self.shared_banks
            },
            shared_bank_bytes: if self.shared_bank_bytes == 0 {
                4
            } else {
                self.shared_bank_bytes
            },
            int_sp_units_per_sm: self
                .int_sp_units_per_sm
                .ok_or(SpecError::MissingField("int_sp_units_per_sm"))?,
            dp_units_per_sm: self
                .dp_units_per_sm
                .ok_or(SpecError::MissingField("dp_units_per_sm"))?,
            sf_units_per_sm: self
                .sf_units_per_sm
                .ok_or(SpecError::MissingField("sf_units_per_sm"))?,
            tdp_w: self.tdp_w.ok_or(SpecError::MissingField("tdp_w"))?,
            power_refresh_ms: if self.power_refresh_ms <= 0.0 {
                50.0
            } else {
                self.power_refresh_ms
            },
        };
        if !spec.supports(spec.default_config) {
            return Err(SpecError::DefaultNotInTable(spec.default_config));
        }
        Ok(spec)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toy() -> DeviceSpec {
        DeviceSpec::builder()
            .name("Toy")
            .architecture(Architecture::Maxwell)
            .compute_capability(5, 2)
            .core_freqs([1000, 900, 800])
            .mem_freqs([2000, 1000])
            .default_config(FreqConfig::from_mhz(900, 2000))
            .num_sms(4)
            .int_sp_units_per_sm(128)
            .dp_units_per_sm(4)
            .sf_units_per_sm(32)
            .tdp_w(120.0)
            .build()
            .unwrap()
    }

    #[test]
    fn builder_applies_defaults() {
        let d = toy();
        assert_eq!(d.warp_size(), 32);
        assert_eq!(d.mem_bus_bytes_per_cycle(), 48);
        assert_eq!(d.shared_banks(), 32);
        assert_eq!(d.shared_bank_bytes(), 4);
        assert_eq!(d.power_refresh_ms(), 50.0);
    }

    #[test]
    fn builder_rejects_missing_name() {
        let err = DeviceSpec::builder().build().unwrap_err();
        assert_eq!(err, SpecError::MissingField("name"));
    }

    #[test]
    fn builder_rejects_unsorted_tables() {
        let err = DeviceSpec::builder()
            .name("x")
            .architecture(Architecture::Kepler)
            .core_freqs([800, 900])
            .mem_freqs([2000])
            .default_config(FreqConfig::from_mhz(800, 2000))
            .num_sms(1)
            .int_sp_units_per_sm(1)
            .dp_units_per_sm(1)
            .sf_units_per_sm(1)
            .tdp_w(1.0)
            .build()
            .unwrap_err();
        assert_eq!(err, SpecError::UnsortedTable("core_freqs"));
    }

    #[test]
    fn builder_rejects_default_outside_table() {
        let err = DeviceSpec::builder()
            .name("x")
            .architecture(Architecture::Kepler)
            .core_freqs([900, 800])
            .mem_freqs([2000])
            .default_config(FreqConfig::from_mhz(850, 2000))
            .num_sms(1)
            .int_sp_units_per_sm(1)
            .dp_units_per_sm(1)
            .sf_units_per_sm(1)
            .tdp_w(1.0)
            .build()
            .unwrap_err();
        assert!(matches!(err, SpecError::DefaultNotInTable(_)));
    }

    #[test]
    fn vf_grid_is_full_cross_product() {
        let d = toy();
        let grid = d.vf_grid();
        assert_eq!(grid.len(), 6);
        assert_eq!(grid[0], FreqConfig::from_mhz(1000, 2000));
        assert_eq!(grid[5], FreqConfig::from_mhz(800, 1000));
        for c in grid {
            assert!(d.supports(c));
        }
    }

    #[test]
    fn peak_throughputs_scale_linearly_with_frequency() {
        let d = toy();
        let t1 = d
            .peak_warp_throughput(Component::Sp, Mhz::new(800))
            .unwrap();
        let t2 = d
            .peak_warp_throughput(Component::Sp, Mhz::new(1000))
            .unwrap();
        assert!((t2 / t1 - 1.25).abs() < 1e-12);
        // 128 lanes / 32 threads = 4 warps per cycle per SM, x4 SMs.
        assert_eq!(t1, 800.0e6 * 4.0 * 4.0);
    }

    #[test]
    fn dram_and_shared_bandwidths() {
        let d = toy();
        assert_eq!(d.peak_dram_bandwidth(Mhz::new(1000)), 1000.0e6 * 48.0);
        // 32 banks x 4 B x 4 SMs = 512 B/cycle.
        assert_eq!(d.peak_shared_bandwidth(Mhz::new(1000)), 1000.0e6 * 512.0);
    }

    #[test]
    fn memory_levels_have_no_unit_count() {
        let d = toy();
        assert!(matches!(
            d.units_per_sm(Component::Dram),
            Err(SpecError::NotAComputeUnit(Component::Dram))
        ));
        assert!(d
            .peak_warp_throughput(Component::L2Cache, Mhz::new(1000))
            .is_err());
    }

    #[test]
    fn core_level_fallback_picks_first_at_or_below() {
        let d = toy();
        let mem = Mhz::new(2000);
        assert_eq!(
            d.core_level_at_or_below(Mhz::new(950), mem),
            Some(FreqConfig::from_mhz(900, 2000))
        );
        assert_eq!(
            d.core_level_at_or_below(Mhz::new(800), mem),
            Some(FreqConfig::from_mhz(800, 2000))
        );
        assert_eq!(d.core_level_at_or_below(Mhz::new(700), mem), None);
    }

    #[test]
    fn check_config_errors_on_unsupported() {
        let d = toy();
        assert!(d.check_config(FreqConfig::from_mhz(900, 1000)).is_ok());
        assert!(d.check_config(FreqConfig::from_mhz(901, 1000)).is_err());
    }

    #[test]
    fn display_mentions_name_and_arch() {
        let s = toy().to_string();
        assert!(s.contains("Toy") && s.contains("Maxwell"));
    }

    #[test]
    fn spec_serde_round_trip() {
        let d = toy();
        let json = gpm_json::to_string(&d).unwrap();
        let back: DeviceSpec = gpm_json::from_str(&json).unwrap();
        assert_eq!(d, back);
    }
}
