//! Preset specifications of the three GPUs studied in the paper (Table II).
//!
//! The core frequency tables reproduce the ranges and level counts reported
//! in Table II (the paper gives `[min:max]` and a level count; the exact
//! intermediate driver steps are reconstructed to include the documented
//! default levels and, for the GTX Titan X, the 1126 MHz level referenced
//! in the Figure 9 TDP-fallback note).

use crate::{Architecture, DeviceSpec, FreqConfig};

/// NVIDIA Titan Xp (Pascal, compute capability 6.1).
///
/// 30 SMs, 128 INT/SP + 4 DP + 32 SF units per SM, TDP 250 W.
/// Memory levels {5705, 4705} MHz ("NVIDIA driver does not allow setting
/// the memory frequency to lower levels"), 22 core levels in
/// [582:1911] MHz, default (1404, 5705), 35 ms power-sensor refresh.
pub fn titan_xp() -> DeviceSpec {
    DeviceSpec::builder()
        .name("Titan Xp")
        .architecture(Architecture::Pascal)
        .compute_capability(6, 1)
        .core_freqs([
            1911, 1847, 1784, 1721, 1657, 1594, 1531, 1467, 1404, 1341, 1278, 1214, 1151, 1088,
            1025, 961, 898, 835, 772, 708, 645, 582,
        ])
        .mem_freqs([5705, 4705])
        .default_config(FreqConfig::from_mhz(1404, 5705))
        .num_sms(30)
        .int_sp_units_per_sm(128)
        .dp_units_per_sm(4)
        .sf_units_per_sm(32)
        .tdp_w(250.0)
        .power_refresh_ms(35.0)
        .build()
        .expect("titan xp preset is valid")
}

/// NVIDIA GTX Titan X (Maxwell, compute capability 5.2).
///
/// 24 SMs, 128 INT/SP + 4 DP + 32 SF units per SM, TDP 250 W.
/// Memory levels {4005, 3505, 3300, 810} MHz, 16 core levels in
/// [595:1164] MHz, default (975, 3505), 100 ms power-sensor refresh.
pub fn gtx_titan_x() -> DeviceSpec {
    DeviceSpec::builder()
        .name("GTX Titan X")
        .architecture(Architecture::Maxwell)
        .compute_capability(5, 2)
        .core_freqs([
            1164, 1126, 1088, 1050, 1013, 975, 937, 899, 861, 823, 785, 747, 709, 671, 633, 595,
        ])
        .mem_freqs([4005, 3505, 3300, 810])
        .default_config(FreqConfig::from_mhz(975, 3505))
        .num_sms(24)
        .int_sp_units_per_sm(128)
        .dp_units_per_sm(4)
        .sf_units_per_sm(32)
        .tdp_w(250.0)
        .power_refresh_ms(100.0)
        .build()
        .expect("gtx titan x preset is valid")
}

/// NVIDIA Tesla K40c (Kepler, compute capability 3.5).
///
/// 15 SMs, 192 INT/SP + 64 DP + 32 SF units per SM, TDP 235 W.
/// A single non-idle memory level (3004 MHz), 4 core levels
/// {875, 810, 745, 666} MHz, default (875, 3004), 15 ms sensor refresh.
pub fn tesla_k40c() -> DeviceSpec {
    DeviceSpec::builder()
        .name("Tesla K40c")
        .architecture(Architecture::Kepler)
        .compute_capability(3, 5)
        .core_freqs([875, 810, 745, 666])
        .mem_freqs([3004])
        .default_config(FreqConfig::from_mhz(875, 3004))
        .num_sms(15)
        .int_sp_units_per_sm(192)
        .dp_units_per_sm(64)
        .sf_units_per_sm(32)
        .tdp_w(235.0)
        .power_refresh_ms(15.0)
        .build()
        .expect("tesla k40c preset is valid")
}

/// NVIDIA GTX 980 (Maxwell, compute capability 5.2) — not a paper
/// device; included to exercise the pipeline on a fourth specification
/// (smaller SM count, different frequency tables).
pub fn gtx_980() -> DeviceSpec {
    DeviceSpec::builder()
        .name("GTX 980")
        .architecture(Architecture::Maxwell)
        .compute_capability(5, 2)
        .core_freqs([1278, 1215, 1152, 1089, 1026, 963, 900, 837, 774, 711, 648])
        .mem_freqs([3505, 3000, 810])
        .default_config(FreqConfig::from_mhz(1152, 3505))
        .num_sms(16)
        .mem_bus_bytes_per_cycle(32)
        .int_sp_units_per_sm(128)
        .dp_units_per_sm(4)
        .sf_units_per_sm(32)
        .tdp_w(165.0)
        .power_refresh_ms(100.0)
        .build()
        .expect("gtx 980 preset is valid")
}

/// Synthetic V100-class datacenter preset (Volta, compute capability
/// 7.0) — not a paper device. Models the dense server-GPU frequency
/// tables of the FGCS multi-GPU DVFS framework (103 core levels for the
/// V100 class): 103 core levels in [462:1380] MHz at a 9 MHz step over a
/// single 877 MHz HBM2 level, 80 SMs, TDP 300 W. The `m` suffix marks it
/// as *modeled*: the spec (and the simulator physics behind it) are
/// calibrated to the class's public envelope, not measured silicon.
pub fn v100m() -> DeviceSpec {
    DeviceSpec::builder()
        .name("V100m")
        .architecture(Architecture::Volta)
        .compute_capability(7, 0)
        .core_freqs((0..103).map(|i| 1380 - 9 * i))
        .mem_freqs([877])
        .default_config(FreqConfig::from_mhz(1200, 877))
        .num_sms(80)
        .mem_bus_bytes_per_cycle(1024)
        .int_sp_units_per_sm(64)
        .dp_units_per_sm(32)
        .sf_units_per_sm(16)
        .tdp_w(300.0)
        .power_refresh_ms(20.0)
        .build()
        .expect("v100m preset is valid")
}

/// Synthetic A100-class datacenter preset (Ampere, compute capability
/// 8.0) — not a paper device. 61 core levels in [510:1410] MHz at a
/// 15 MHz step (the FGCS framework's 61-level A100 table) over a single
/// 1215 MHz HBM2e level, 108 SMs, TDP 400 W.
pub fn a100m() -> DeviceSpec {
    DeviceSpec::builder()
        .name("A100m")
        .architecture(Architecture::Ampere)
        .compute_capability(8, 0)
        .core_freqs((0..61).map(|i| 1410 - 15 * i))
        .mem_freqs([1215])
        .default_config(FreqConfig::from_mhz(1200, 1215))
        .num_sms(108)
        .mem_bus_bytes_per_cycle(1280)
        .int_sp_units_per_sm(64)
        .dp_units_per_sm(32)
        .sf_units_per_sm(16)
        .tdp_w(400.0)
        .power_refresh_ms(20.0)
        .build()
        .expect("a100m preset is valid")
}

/// Synthetic H100-class datacenter preset (Hopper, compute capability
/// 9.0) — not a paper device. 104 core levels in [435:1980] MHz at a
/// 15 MHz step (the FGCS framework's 104-level H100 table) over a single
/// 1593 MHz HBM3 level, 132 SMs, TDP 700 W.
pub fn h100m() -> DeviceSpec {
    DeviceSpec::builder()
        .name("H100m")
        .architecture(Architecture::Hopper)
        .compute_capability(9, 0)
        .core_freqs((0..104).map(|i| 1980 - 15 * i))
        .mem_freqs([1593])
        .default_config(FreqConfig::from_mhz(1500, 1593))
        .num_sms(132)
        .mem_bus_bytes_per_cycle(1280)
        .int_sp_units_per_sm(64)
        .dp_units_per_sm(32)
        .sf_units_per_sm(16)
        .tdp_w(700.0)
        .power_refresh_ms(20.0)
        .build()
        .expect("h100m preset is valid")
}

/// All three paper devices, Pascal first (the order of Fig. 7).
pub fn all() -> Vec<DeviceSpec> {
    vec![titan_xp(), gtx_titan_x(), tesla_k40c()]
}

/// The synthetic datacenter device classes ([`v100m`], [`a100m`],
/// [`h100m`]) used by the fleet simulation, newest last.
pub fn datacenter() -> Vec<DeviceSpec> {
    vec![v100m(), a100m(), h100m()]
}

/// The paper devices plus the extra non-paper preset ([`gtx_980`]).
pub fn extended() -> Vec<DeviceSpec> {
    let mut v = all();
    v.push(gtx_980());
    v
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Component, Mhz};

    #[test]
    fn table2_level_counts() {
        assert_eq!(titan_xp().core_freqs().len(), 22);
        assert_eq!(titan_xp().mem_freqs().len(), 2);
        assert_eq!(gtx_titan_x().core_freqs().len(), 16);
        assert_eq!(gtx_titan_x().mem_freqs().len(), 4);
        assert_eq!(tesla_k40c().core_freqs().len(), 4);
        assert_eq!(tesla_k40c().mem_freqs().len(), 1);
    }

    #[test]
    fn table2_core_ranges() {
        let xp = titan_xp();
        assert_eq!(xp.core_freqs()[0], Mhz::new(1911));
        assert_eq!(*xp.core_freqs().last().unwrap(), Mhz::new(582));
        let tx = gtx_titan_x();
        assert_eq!(tx.core_freqs()[0], Mhz::new(1164));
        assert_eq!(*tx.core_freqs().last().unwrap(), Mhz::new(595));
        let k = tesla_k40c();
        assert_eq!(k.core_freqs()[0], Mhz::new(875));
        assert_eq!(*k.core_freqs().last().unwrap(), Mhz::new(666));
    }

    #[test]
    fn table2_defaults_present() {
        for d in all() {
            assert!(d.supports(d.default_config()), "{}", d.name());
        }
        assert_eq!(
            titan_xp().default_config(),
            FreqConfig::from_mhz(1404, 5705)
        );
        assert_eq!(
            gtx_titan_x().default_config(),
            FreqConfig::from_mhz(975, 3505)
        );
        assert_eq!(
            tesla_k40c().default_config(),
            FreqConfig::from_mhz(875, 3004)
        );
    }

    #[test]
    fn table2_unit_counts() {
        let k = tesla_k40c();
        assert_eq!(k.units_per_sm(Component::Sp).unwrap(), 192);
        assert_eq!(k.units_per_sm(Component::Dp).unwrap(), 64);
        let tx = gtx_titan_x();
        assert_eq!(tx.units_per_sm(Component::Int).unwrap(), 128);
        assert_eq!(tx.units_per_sm(Component::Dp).unwrap(), 4);
        for d in all() {
            assert_eq!(d.units_per_sm(Component::Sf).unwrap(), 32);
            assert_eq!(d.warp_size(), 32);
            assert_eq!(d.mem_bus_bytes_per_cycle(), 48);
            assert_eq!(d.shared_banks(), 32);
        }
    }

    #[test]
    fn table2_tdp_and_sms() {
        assert_eq!(titan_xp().num_sms(), 30);
        assert_eq!(gtx_titan_x().num_sms(), 24);
        assert_eq!(tesla_k40c().num_sms(), 15);
        assert_eq!(titan_xp().tdp_w(), 250.0);
        assert_eq!(tesla_k40c().tdp_w(), 235.0);
    }

    #[test]
    fn titan_x_has_fig9_fallback_level() {
        // Fig. 9 footnote: prediction at 1164 MHz exceeds TDP, so the
        // closest non-violating level 1126 MHz is used.
        assert!(gtx_titan_x().core_freqs().contains(&Mhz::new(1126)));
    }

    #[test]
    fn sensor_refresh_rates_match_section_5a() {
        assert_eq!(titan_xp().power_refresh_ms(), 35.0);
        assert_eq!(gtx_titan_x().power_refresh_ms(), 100.0);
        assert_eq!(tesla_k40c().power_refresh_ms(), 15.0);
    }

    #[test]
    fn extended_list_adds_the_gtx_980() {
        let ext = extended();
        assert_eq!(ext.len(), 4);
        assert_eq!(ext[3].name(), "GTX 980");
        let g = gtx_980();
        assert_eq!(g.num_sms(), 16);
        assert_eq!(g.core_freqs().len(), 11);
        assert!(g.supports(g.default_config()));
        assert_eq!(g.tdp_w(), 165.0);
    }

    #[test]
    fn datacenter_level_counts_match_fgcs_tables() {
        // The FGCS multi-GPU framework's per-class frequency tables:
        // 103 (V100), 61 (A100), 104 (H100) core levels, one HBM level.
        let v = v100m();
        assert_eq!(v.core_freqs().len(), 103);
        assert_eq!(v.core_freqs()[0], Mhz::new(1380));
        assert_eq!(*v.core_freqs().last().unwrap(), Mhz::new(462));
        assert_eq!(v.mem_freqs(), [Mhz::new(877)]);
        let a = a100m();
        assert_eq!(a.core_freqs().len(), 61);
        assert_eq!(a.core_freqs()[0], Mhz::new(1410));
        assert_eq!(*a.core_freqs().last().unwrap(), Mhz::new(510));
        assert_eq!(a.mem_freqs(), [Mhz::new(1215)]);
        let h = h100m();
        assert_eq!(h.core_freqs().len(), 104);
        assert_eq!(h.core_freqs()[0], Mhz::new(1980));
        assert_eq!(*h.core_freqs().last().unwrap(), Mhz::new(435));
        assert_eq!(h.mem_freqs(), [Mhz::new(1593)]);
    }

    #[test]
    fn datacenter_envelope_fields() {
        for d in datacenter() {
            assert!(d.supports(d.default_config()), "{}", d.name());
            assert_eq!(d.units_per_sm(Component::Int).unwrap(), 64, "{}", d.name());
            assert_eq!(d.units_per_sm(Component::Dp).unwrap(), 32, "{}", d.name());
        }
        assert_eq!(v100m().num_sms(), 80);
        assert_eq!(a100m().num_sms(), 108);
        assert_eq!(h100m().num_sms(), 132);
        assert_eq!(v100m().tdp_w(), 300.0);
        assert_eq!(a100m().tdp_w(), 400.0);
        assert_eq!(h100m().tdp_w(), 700.0);
        assert_eq!(v100m().mem_bus_bytes_per_cycle(), 1024);
        assert_eq!(a100m().mem_bus_bytes_per_cycle(), 1280);
        assert_eq!(h100m().mem_bus_bytes_per_cycle(), 1280);
    }

    #[test]
    fn datacenter_specs_round_trip_through_json() {
        // Golden-schema guard: the serialized form must keep the exact
        // field set and survive a parse round trip, so fleet traces that
        // embed specs stay replayable across versions.
        use gpm_json::FromJson;
        for d in datacenter() {
            let text = gpm_json::to_string(&d).unwrap();
            for field in [
                "\"name\"",
                "\"architecture\"",
                "\"core_freqs\"",
                "\"mem_freqs\"",
                "\"default_config\"",
                "\"num_sms\"",
                "\"tdp_w\"",
            ] {
                assert!(text.contains(field), "{}: missing {field}", d.name());
            }
            let back = DeviceSpec::from_json(&gpm_json::parse(&text).unwrap()).unwrap();
            assert_eq!(back, d, "{}", d.name());
        }
        assert!(gpm_json::to_string(&v100m()).unwrap().contains("\"Volta\""));
        assert!(gpm_json::to_string(&a100m())
            .unwrap()
            .contains("\"Ampere\""));
        assert!(gpm_json::to_string(&h100m())
            .unwrap()
            .contains("\"Hopper\""));
    }

    #[test]
    fn memory_range_ratios_match_paper() {
        // Section V-B: 4.3x memory range on the Titan X, 1.2x on the Xp.
        let tx = gtx_titan_x();
        let ratio = tx.mem_freqs()[1].as_f64() / tx.mem_freqs().last().unwrap().as_f64();
        assert!((ratio - 4.327).abs() < 0.01);
        let xp = titan_xp();
        let ratio = xp.mem_freqs()[0].as_f64() / xp.mem_freqs()[1].as_f64();
        assert!((ratio - 1.21).abs() < 0.01);
    }
}
