//! Error type for specification construction and lookups.

use crate::{Component, FreqConfig};
use std::fmt;

/// Errors produced when building or querying a device specification.
#[derive(Debug, Clone, PartialEq)]
pub enum SpecError {
    /// A builder field was missing or a provided list was empty.
    MissingField(&'static str),
    /// The default frequency configuration is not in the device tables.
    DefaultNotInTable(FreqConfig),
    /// A frequency configuration is not supported by the device.
    UnsupportedConfig(FreqConfig),
    /// A per-unit count was requested for a component that has none
    /// (memory levels have bandwidths, not unit counts).
    NotAComputeUnit(Component),
    /// A frequency table is not strictly decreasing.
    UnsortedTable(&'static str),
}

impl fmt::Display for SpecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SpecError::MissingField(name) => write!(f, "missing or empty builder field `{name}`"),
            SpecError::DefaultNotInTable(c) => {
                write!(
                    f,
                    "default configuration {c} is not in the frequency tables"
                )
            }
            SpecError::UnsupportedConfig(c) => {
                write!(
                    f,
                    "frequency configuration {c} is not supported by this device"
                )
            }
            SpecError::NotAComputeUnit(c) => {
                write!(
                    f,
                    "component {c} is not a compute unit and has no per-SM unit count"
                )
            }
            SpecError::UnsortedTable(name) => {
                write!(f, "frequency table `{name}` must be strictly decreasing")
            }
        }
    }
}

impl std::error::Error for SpecError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_lowercase_and_specific() {
        let e = SpecError::MissingField("name");
        assert!(e.to_string().contains("name"));
        let e = SpecError::UnsupportedConfig(FreqConfig::from_mhz(1, 2));
        assert!(e.to_string().contains("core 1 MHz"));
    }

    #[test]
    fn implements_std_error() {
        fn assert_err<E: std::error::Error + Send + Sync + 'static>() {}
        assert_err::<SpecError>();
    }
}
