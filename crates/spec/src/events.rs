//! Performance-event identifiers per device (the paper's Table I).
//!
//! NVIDIA's CUPTI exposes two kinds of events: *disclosed* events with
//! stable names (e.g. `active_cycles`, `fb_subp0_read_sectors`) and
//! *undisclosed* events identified only by a numeric ID, whose meaning the
//! authors uncovered "through an extensive experimental testing". Table I
//! lists, for each of the three devices, which events feed each metric of
//! Eqs. 8-10; the numeric IDs share a per-device prefix (352321 on the
//! Titan Xp, 335544 on the GTX Titan X, 318767 on the Tesla K40c).
//!
//! The simulated counter layer in `gpm-sim` emits exactly these events, and
//! the aggregation in `gpm-core` consumes them, so the full
//! raw-events-to-metrics pipeline of the paper is exercised end to end.

use crate::Architecture;
use gpm_json::{impl_json, FromJson, Json, JsonError, JsonKey, ToJson};
use std::fmt;

/// Size in bytes of an L2/DRAM *sector* — the granularity of the
/// `*_sector*` events. Aggregation multiplies sector counts by this to
/// obtain achieved bytes.
pub const SECTOR_BYTES: u32 = 32;

/// Size in bytes of one shared-memory transaction (a full 32-bank x 4 B
/// wavefront), the granularity of the `shared_*_transactions` events.
pub const SHARED_TRANSACTION_BYTES: u32 = 128;

/// Every disclosed event name that appears in Table I across the three
/// devices — the closed set that [`EventId`] deserialization interns
/// against.
pub const ALL_EVENT_NAMES: &[&str] = &[
    "active_cycles",
    "l2_subp0_total_read_sector_queries",
    "l2_subp1_total_read_sector_queries",
    "l2_subp2_total_read_sector_queries",
    "l2_subp3_total_read_sector_queries",
    "l2_subp0_total_write_sector_queries",
    "l2_subp1_total_write_sector_queries",
    "l2_subp2_total_write_sector_queries",
    "l2_subp3_total_write_sector_queries",
    "shared_ld_transactions",
    "shared_st_transactions",
    "l1_shared_ld_transactions",
    "l1_shared_st_transactions",
    "fb_subp0_read_sectors",
    "fb_subp1_read_sectors",
    "fb_subp0_write_sectors",
    "fb_subp1_write_sectors",
];

/// A CUPTI-style event identifier: either a disclosed name or an
/// undisclosed numeric ID.
///
/// Serialized as a plain string (named events) or integer (numeric IDs);
/// deserialization interns names against [`ALL_EVENT_NAMES`], since the
/// set of Table I events is closed.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum EventId {
    /// Disclosed event with a stable CUPTI name.
    Named(&'static str),
    /// Undisclosed event, identified only by its numeric ID
    /// (per-device prefix x 1000 + suffix, as in Table I).
    Numeric(u64),
}

impl JsonKey for EventId {
    // Always a string, so event IDs are usable as JSON map keys.
    fn to_key(&self) -> String {
        match self {
            EventId::Named(name) => name.to_string(),
            EventId::Numeric(id) => id.to_string(),
        }
    }

    fn from_key(key: &str) -> Result<Self, JsonError> {
        if let Ok(id) = key.parse::<u64>() {
            return Ok(EventId::Numeric(id));
        }
        ALL_EVENT_NAMES
            .iter()
            .find(|&&n| n == key)
            .map(|&n| EventId::Named(n))
            .ok_or_else(|| JsonError::new(format!("unknown event name `{key}`")))
    }
}

impl ToJson for EventId {
    fn to_json(&self) -> Json {
        Json::Str(self.to_key())
    }
}

impl FromJson for EventId {
    fn from_json(json: &Json) -> Result<Self, JsonError> {
        match json {
            Json::Str(s) => EventId::from_key(s),
            // Accept bare integers too, matching the permissive old input
            // format for undisclosed numeric IDs.
            Json::Num(n) => u64::from_json(json)
                .map(EventId::Numeric)
                .map_err(|_| JsonError::new(format!("invalid numeric event ID {n}"))),
            other => Err(JsonError::expected("event name or numeric ID", other)),
        }
    }
}

impl fmt::Display for EventId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EventId::Named(name) => f.write_str(name),
            EventId::Numeric(id) => write!(f, "event_{id}"),
        }
    }
}

/// A model-level metric assembled from one or more raw events
/// (rows of Table I).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Metric {
    /// Cycles with at least one active warp on the SMs (`ACycles`).
    ActiveCycles,
    /// L2 read sector queries, summed over subpartitions.
    L2ReadSectors,
    /// L2 write sector queries, summed over subpartitions.
    L2WriteSectors,
    /// Shared-memory load transactions.
    SharedLoadTrans,
    /// Shared-memory store transactions.
    SharedStoreTrans,
    /// DRAM (frame buffer) read sectors, summed over subpartitions.
    DramReadSectors,
    /// DRAM (frame buffer) write sectors, summed over subpartitions.
    DramWriteSectors,
    /// Warps issued to the fused INT/SP pipelines (`AWarps_{Int/SP}`;
    /// indistinguishable at the event level, split by Eq. 10).
    WarpsIntSp,
    /// Warps issued to the DP pipeline (`AWarps_DP`).
    WarpsDp,
    /// Warps issued to the SF pipeline (`AWarps_SF`).
    WarpsSf,
    /// Executed integer instructions (`Inst_INT`, for the Eq. 10 split).
    InstInt,
    /// Executed single-precision instructions (`Inst_SP`).
    InstSp,
}

impl_json!(
    enum Metric {
        ActiveCycles,
        L2ReadSectors,
        L2WriteSectors,
        SharedLoadTrans,
        SharedStoreTrans,
        DramReadSectors,
        DramWriteSectors,
        WarpsIntSp,
        WarpsDp,
        WarpsSf,
        InstInt,
        InstSp,
    }
);

impl Metric {
    /// All metrics, in Table I row order.
    pub const ALL: [Metric; 12] = [
        Metric::ActiveCycles,
        Metric::L2ReadSectors,
        Metric::L2WriteSectors,
        Metric::SharedLoadTrans,
        Metric::SharedStoreTrans,
        Metric::DramReadSectors,
        Metric::DramWriteSectors,
        Metric::WarpsIntSp,
        Metric::WarpsDp,
        Metric::WarpsSf,
        Metric::InstInt,
        Metric::InstSp,
    ];
}

impl fmt::Display for Metric {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Metric::ActiveCycles => "ACycles",
            Metric::L2ReadSectors => "L2 read sectors",
            Metric::L2WriteSectors => "L2 write sectors",
            Metric::SharedLoadTrans => "shared load transactions",
            Metric::SharedStoreTrans => "shared store transactions",
            Metric::DramReadSectors => "DRAM read sectors",
            Metric::DramWriteSectors => "DRAM write sectors",
            Metric::WarpsIntSp => "AWarps INT/SP",
            Metric::WarpsDp => "AWarps DP",
            Metric::WarpsSf => "AWarps SF",
            Metric::InstInt => "Inst INT",
            Metric::InstSp => "Inst SP",
        };
        f.write_str(s)
    }
}

/// The per-device mapping from metrics to raw events (Table I).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EventTable {
    architecture: Architecture,
    rows: Vec<(Metric, Vec<EventId>)>,
}

impl EventTable {
    /// Builds the Table I event mapping for a device family.
    pub fn for_architecture(architecture: Architecture) -> Self {
        let prefix: u64 = match architecture {
            Architecture::Pascal => 352_321,
            Architecture::Maxwell => 335_544,
            Architecture::Kepler => 318_767,
            Architecture::Volta => 369_098,
            Architecture::Ampere => 385_875,
            Architecture::Hopper => 402_652,
        };
        let num = |suffix: u64| EventId::Numeric(prefix * 1000 + suffix);
        let mut rows: Vec<(Metric, Vec<EventId>)> = Vec::new();
        rows.push((Metric::ActiveCycles, vec![EventId::Named("active_cycles")]));
        match architecture {
            Architecture::Pascal
            | Architecture::Maxwell
            | Architecture::Volta
            | Architecture::Ampere
            | Architecture::Hopper => {
                rows.push((
                    Metric::L2ReadSectors,
                    vec![
                        EventId::Named("l2_subp0_total_read_sector_queries"),
                        EventId::Named("l2_subp1_total_read_sector_queries"),
                    ],
                ));
                rows.push((
                    Metric::L2WriteSectors,
                    vec![
                        EventId::Named("l2_subp0_total_write_sector_queries"),
                        EventId::Named("l2_subp1_total_write_sector_queries"),
                    ],
                ));
                rows.push((
                    Metric::SharedLoadTrans,
                    vec![EventId::Named("shared_ld_transactions")],
                ));
                rows.push((
                    Metric::SharedStoreTrans,
                    vec![EventId::Named("shared_st_transactions")],
                ));
            }
            Architecture::Kepler => {
                rows.push((
                    Metric::L2ReadSectors,
                    (0..4)
                        .map(|i| {
                            EventId::Named(match i {
                                0 => "l2_subp0_total_read_sector_queries",
                                1 => "l2_subp1_total_read_sector_queries",
                                2 => "l2_subp2_total_read_sector_queries",
                                _ => "l2_subp3_total_read_sector_queries",
                            })
                        })
                        .collect(),
                ));
                rows.push((
                    Metric::L2WriteSectors,
                    (0..4)
                        .map(|i| {
                            EventId::Named(match i {
                                0 => "l2_subp0_total_write_sector_queries",
                                1 => "l2_subp1_total_write_sector_queries",
                                2 => "l2_subp2_total_write_sector_queries",
                                _ => "l2_subp3_total_write_sector_queries",
                            })
                        })
                        .collect(),
                ));
                rows.push((
                    Metric::SharedLoadTrans,
                    vec![EventId::Named("l1_shared_ld_transactions")],
                ));
                rows.push((
                    Metric::SharedStoreTrans,
                    vec![EventId::Named("l1_shared_st_transactions")],
                ));
            }
        }
        rows.push((
            Metric::DramReadSectors,
            vec![
                EventId::Named("fb_subp0_read_sectors"),
                EventId::Named("fb_subp1_read_sectors"),
            ],
        ));
        rows.push((
            Metric::DramWriteSectors,
            vec![
                EventId::Named("fb_subp0_write_sectors"),
                EventId::Named("fb_subp1_write_sectors"),
            ],
        ));
        let (warps_intsp, warps_dp, warps_sf, inst_int, inst_sp): (Vec<u64>, u64, u64, u64, u64) =
            match architecture {
                // The post-Pascal datacenter families expose Pascal-style
                // warp events under their own per-family prefix.
                Architecture::Pascal
                | Architecture::Volta
                | Architecture::Ampere
                | Architecture::Hopper => (vec![580, 581], 584, 560, 831, 829),
                Architecture::Maxwell => (vec![361, 362], 364, 359, 504, 502),
                Architecture::Kepler => (vec![131, 134, 136, 137], 141, 133, 205, 203),
            };
        rows.push((
            Metric::WarpsIntSp,
            warps_intsp.into_iter().map(num).collect(),
        ));
        rows.push((Metric::WarpsDp, vec![num(warps_dp)]));
        rows.push((Metric::WarpsSf, vec![num(warps_sf)]));
        rows.push((Metric::InstInt, vec![num(inst_int)]));
        rows.push((Metric::InstSp, vec![num(inst_sp)]));
        EventTable { architecture, rows }
    }

    /// The architecture this table applies to.
    pub fn architecture(&self) -> Architecture {
        self.architecture
    }

    /// Raw events that must be summed to obtain `metric` (one Table I cell).
    pub fn events(&self, metric: Metric) -> &[EventId] {
        self.rows
            .iter()
            .find(|(m, _)| *m == metric)
            .map(|(_, evs)| evs.as_slice())
            .unwrap_or(&[])
    }

    /// Iterates over `(metric, events)` rows in Table I order.
    pub fn iter(&self) -> impl Iterator<Item = (Metric, &[EventId])> {
        self.rows.iter().map(|(m, evs)| (*m, evs.as_slice()))
    }

    /// Every distinct raw event the profiler must collect on this device.
    pub fn all_events(&self) -> Vec<EventId> {
        let mut out: Vec<EventId> = self.rows.iter().flat_map(|(_, evs)| evs.clone()).collect();
        out.sort_unstable();
        out.dedup();
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_metric_has_events_on_every_architecture() {
        for arch in [
            Architecture::Pascal,
            Architecture::Maxwell,
            Architecture::Kepler,
        ] {
            let t = EventTable::for_architecture(arch);
            for m in Metric::ALL {
                assert!(!t.events(m).is_empty(), "{arch:?} {m}");
            }
        }
    }

    #[test]
    fn numeric_prefixes_match_table1_footnote() {
        let xp = EventTable::for_architecture(Architecture::Pascal);
        assert_eq!(xp.events(Metric::WarpsSf), &[EventId::Numeric(352_321_560)]);
        let tx = EventTable::for_architecture(Architecture::Maxwell);
        assert_eq!(tx.events(Metric::WarpsDp), &[EventId::Numeric(335_544_364)]);
        let k40 = EventTable::for_architecture(Architecture::Kepler);
        assert_eq!(k40.events(Metric::InstSp), &[EventId::Numeric(318_767_203)]);
    }

    #[test]
    fn kepler_has_four_l2_subpartitions_and_four_intsp_events() {
        let k40 = EventTable::for_architecture(Architecture::Kepler);
        assert_eq!(k40.events(Metric::L2ReadSectors).len(), 4);
        assert_eq!(k40.events(Metric::L2WriteSectors).len(), 4);
        assert_eq!(k40.events(Metric::WarpsIntSp).len(), 4);
        let tx = EventTable::for_architecture(Architecture::Maxwell);
        assert_eq!(tx.events(Metric::L2ReadSectors).len(), 2);
        assert_eq!(tx.events(Metric::WarpsIntSp).len(), 2);
    }

    #[test]
    fn dram_uses_two_fb_subpartitions_everywhere() {
        for arch in [
            Architecture::Pascal,
            Architecture::Maxwell,
            Architecture::Kepler,
        ] {
            let t = EventTable::for_architecture(arch);
            assert_eq!(t.events(Metric::DramReadSectors).len(), 2);
            assert_eq!(t.events(Metric::DramWriteSectors).len(), 2);
        }
    }

    #[test]
    fn all_events_deduplicates() {
        let t = EventTable::for_architecture(Architecture::Maxwell);
        let all = t.all_events();
        let mut seen = all.clone();
        seen.sort_unstable();
        seen.dedup();
        assert_eq!(all.len(), seen.len());
        assert!(all.contains(&EventId::Named("active_cycles")));
    }

    #[test]
    fn kepler_shared_events_are_l1_prefixed() {
        let k40 = EventTable::for_architecture(Architecture::Kepler);
        assert_eq!(
            k40.events(Metric::SharedLoadTrans),
            &[EventId::Named("l1_shared_ld_transactions")]
        );
    }

    #[test]
    fn event_id_serde_round_trips_both_variants() {
        let named = EventId::Named("active_cycles");
        let json = gpm_json::to_string(&named).unwrap();
        assert_eq!(json, "\"active_cycles\"");
        assert_eq!(gpm_json::from_str::<EventId>(&json).unwrap(), named);

        let numeric = EventId::Numeric(335_544_361);
        let json = gpm_json::to_string(&numeric).unwrap();
        assert_eq!(json, "\"335544361\"");
        assert_eq!(gpm_json::from_str::<EventId>(&json).unwrap(), numeric);

        // Unknown names are rejected rather than silently interned.
        assert!(gpm_json::from_str::<EventId>("\"warp_yeet_count\"").is_err());
    }

    #[test]
    fn event_ids_work_as_json_map_keys() {
        use std::collections::BTreeMap;
        let mut m: BTreeMap<EventId, u64> = BTreeMap::new();
        m.insert(EventId::Named("active_cycles"), 7);
        m.insert(EventId::Numeric(318_767_141), 9);
        let json = gpm_json::to_string(&m).unwrap();
        let back: BTreeMap<EventId, u64> = gpm_json::from_str(&json).unwrap();
        assert_eq!(m, back);
    }

    #[test]
    fn display_of_event_ids() {
        assert_eq!(EventId::Named("active_cycles").to_string(), "active_cycles");
        assert_eq!(EventId::Numeric(335544361).to_string(), "event_335544361");
    }
}
