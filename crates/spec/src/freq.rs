//! Frequency newtypes and the two-domain frequency configuration.

use gpm_json::{FromJson, Json, JsonError, JsonKey, ToJson};
use std::fmt;

/// A clock frequency in megahertz.
///
/// GPU driver frequency tables are quantized to integer megahertz (e.g. the
/// GTX Titan X exposes memory levels {4005, 3505, 3300, 810} MHz), so the
/// representation is exact and hashable, which lets a [`FreqConfig`] be used
/// as a lookup key for per-configuration data such as estimated voltages.
///
/// # Example
///
/// ```
/// use gpm_spec::Mhz;
///
/// let f = Mhz::new(975);
/// assert_eq!(f.as_u32(), 975);
/// assert_eq!(f.as_hz(), 975.0e6);
/// assert_eq!(f.to_string(), "975 MHz");
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Mhz(u32);

// Serialized transparently as the inner integer megahertz value.
impl ToJson for Mhz {
    fn to_json(&self) -> Json {
        self.0.to_json()
    }
}

impl FromJson for Mhz {
    fn from_json(json: &Json) -> Result<Self, JsonError> {
        u32::from_json(json).map(Mhz)
    }
}

impl Mhz {
    /// Creates a frequency from an integer megahertz value.
    pub const fn new(mhz: u32) -> Self {
        Mhz(mhz)
    }

    /// Returns the frequency as integer megahertz.
    pub const fn as_u32(self) -> u32 {
        self.0
    }

    /// Returns the frequency in hertz as a float, for throughput math.
    pub fn as_hz(self) -> f64 {
        f64::from(self.0) * 1.0e6
    }

    /// Returns the frequency in megahertz as a float.
    pub fn as_f64(self) -> f64 {
        f64::from(self.0)
    }
}

impl From<u32> for Mhz {
    fn from(mhz: u32) -> Self {
        Mhz(mhz)
    }
}

impl fmt::Display for Mhz {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} MHz", self.0)
    }
}

/// A voltage-frequency *configuration*: one frequency per GPU domain.
///
/// Modern NVIDIA GPUs expose two independently clocked domains (Section II
/// of the paper): the *core* (graphics) domain covering the SMs and the L2
/// cache, and the *memory* domain covering the DRAM. A configuration is the
/// pair of their operating frequencies; the driver sets voltages
/// automatically and does not report them, which is precisely the gap the
/// paper's model fills.
///
/// Serialized as the compact string `"<core>@<mem>"` (e.g. `"975@3505"`)
/// so configurations can key JSON maps (per-configuration power tables,
/// voltage tables).
///
/// # Example
///
/// ```
/// use gpm_spec::{FreqConfig, Mhz};
///
/// let reference = FreqConfig::new(Mhz::new(975), Mhz::new(3505));
/// assert_eq!(reference.to_string(), "(core 975 MHz, mem 3505 MHz)");
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct FreqConfig {
    /// Core (graphics) domain frequency.
    pub core: Mhz,
    /// Memory (DRAM) domain frequency.
    pub mem: Mhz,
}

impl JsonKey for FreqConfig {
    fn to_key(&self) -> String {
        format!("{}@{}", self.core.as_u32(), self.mem.as_u32())
    }

    fn from_key(key: &str) -> Result<Self, JsonError> {
        let (core, mem) = key
            .split_once('@')
            .ok_or_else(|| JsonError::new("expected \"<core>@<mem>\""))?;
        let parse = |v: &str| {
            v.parse::<u32>()
                .map_err(|_| JsonError::new(format!("invalid frequency `{v}`")))
        };
        Ok(FreqConfig::from_mhz(parse(core)?, parse(mem)?))
    }
}

impl ToJson for FreqConfig {
    fn to_json(&self) -> Json {
        Json::Str(self.to_key())
    }
}

impl FromJson for FreqConfig {
    fn from_json(json: &Json) -> Result<Self, JsonError> {
        json.as_str()
            .ok_or_else(|| JsonError::expected("\"<core>@<mem>\" string", json))
            .and_then(FreqConfig::from_key)
    }
}

impl FreqConfig {
    /// Creates a configuration from core and memory frequencies.
    pub const fn new(core: Mhz, mem: Mhz) -> Self {
        FreqConfig { core, mem }
    }

    /// Creates a configuration from raw megahertz values.
    pub const fn from_mhz(core: u32, mem: u32) -> Self {
        FreqConfig {
            core: Mhz::new(core),
            mem: Mhz::new(mem),
        }
    }

    /// Returns the frequency of the given domain.
    pub fn domain_freq(&self, domain: crate::Domain) -> Mhz {
        match domain {
            crate::Domain::Core => self.core,
            crate::Domain::Memory => self.mem,
        }
    }
}

impl fmt::Display for FreqConfig {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "(core {}, mem {})", self.core, self.mem)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Domain;

    #[test]
    fn mhz_conversions_are_consistent() {
        let f = Mhz::new(1404);
        assert_eq!(f.as_u32(), 1404);
        assert_eq!(f.as_f64(), 1404.0);
        assert_eq!(f.as_hz(), 1.404e9);
    }

    #[test]
    fn mhz_orders_numerically() {
        assert!(Mhz::new(810) < Mhz::new(3505));
        assert_eq!(Mhz::from(975), Mhz::new(975));
    }

    #[test]
    fn config_domain_lookup() {
        let c = FreqConfig::from_mhz(975, 3505);
        assert_eq!(c.domain_freq(Domain::Core), Mhz::new(975));
        assert_eq!(c.domain_freq(Domain::Memory), Mhz::new(3505));
    }

    #[test]
    fn config_is_usable_as_map_key() {
        use std::collections::HashMap;
        let mut m = HashMap::new();
        m.insert(FreqConfig::from_mhz(975, 3505), 1.0f64);
        m.insert(FreqConfig::from_mhz(975, 810), 2.0f64);
        assert_eq!(m[&FreqConfig::from_mhz(975, 810)], 2.0);
        assert_eq!(m.len(), 2);
    }

    #[test]
    fn display_formats() {
        assert_eq!(Mhz::new(810).to_string(), "810 MHz");
        assert_eq!(
            FreqConfig::from_mhz(595, 810).to_string(),
            "(core 595 MHz, mem 810 MHz)"
        );
    }
}
