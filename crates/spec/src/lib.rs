//! GPU device specifications for DVFS-aware power modeling.
//!
//! This crate captures the *publicly known* characteristics of the GPU
//! devices used in Guerreiro et al., *GPGPU Power Modeling for Multi-Domain
//! Voltage-Frequency Scaling* (HPCA 2018): the contents of the paper's
//! Table II (device descriptions), Table I (performance-event identifiers)
//! and the component/domain decomposition of Section III.
//!
//! Everything in this crate is information that a modeler targeting real
//! hardware would have access to — data sheets, driver-reported frequency
//! tables and CUPTI event listings. Hidden physical characteristics
//! (voltage curves, power coefficients, the L2 peak bandwidth that the
//! paper measures experimentally) live in the `gpm-sim` crate instead and
//! are *not* visible here, which enforces the paper's black-box protocol
//! at the crate-dependency level.
//!
//! # Example
//!
//! ```
//! use gpm_spec::{devices, Component, Domain};
//!
//! let gpu = devices::gtx_titan_x();
//! assert_eq!(gpu.num_sms(), 24);
//! assert_eq!(gpu.default_config().core.as_u32(), 975);
//! assert_eq!(Component::Dram.domain(), Domain::Memory);
//! assert_eq!(gpu.vf_grid().len(), 4 * 16); // 4 memory x 16 core levels
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod component;
mod device;
pub mod devices;
mod error;
pub mod events;
mod freq;

pub use component::{Component, Domain};
pub use device::{Architecture, DeviceSpec, DeviceSpecBuilder};
pub use error::SpecError;
pub use events::{EventId, EventTable, Metric};
pub use freq::{FreqConfig, Mhz};
