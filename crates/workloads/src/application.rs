//! Multi-kernel applications.
//!
//! Real benchmarks launch several kernels per run; Section V-A handles
//! them by weighting "the consumption of each kernel with its relative
//! execution time". An [`Application`] is an ordered set of kernels with
//! per-iteration launch counts; the profiler measures each kernel
//! separately and combines them with exactly that rule.

use crate::{Category, KernelDesc, WorkloadError};
use gpm_json::impl_json;
use gpm_spec::{Component, DeviceSpec};
use std::fmt;

/// A multi-kernel application: kernels plus how many times each is
/// launched per application iteration.
///
/// # Example
///
/// ```
/// use gpm_spec::devices;
/// use gpm_workloads::multi_kernel_suite;
///
/// let apps = multi_kernel_suite(&devices::gtx_titan_x());
/// let kmeans = &apps[0];
/// assert!(kmeans.kernels().len() >= 2);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Application {
    name: String,
    kernels: Vec<(KernelDesc, u32)>,
}

impl_json!(struct Application { name, kernels });

impl Application {
    /// Creates an application from `(kernel, launches per iteration)`
    /// pairs.
    ///
    /// # Errors
    ///
    /// Returns [`WorkloadError::NoWork`] if no kernel has a non-zero
    /// launch count.
    pub fn new(
        name: impl Into<String>,
        kernels: impl IntoIterator<Item = (KernelDesc, u32)>,
    ) -> Result<Self, WorkloadError> {
        let kernels: Vec<(KernelDesc, u32)> = kernels.into_iter().collect();
        if kernels.iter().all(|(_, calls)| *calls == 0) || kernels.is_empty() {
            return Err(WorkloadError::NoWork);
        }
        Ok(Application {
            name: name.into(),
            kernels,
        })
    }

    /// Application name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The kernels with their per-iteration launch counts.
    pub fn kernels(&self) -> &[(KernelDesc, u32)] {
        &self.kernels
    }
}

impl fmt::Display for Application {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} ({} kernels)", self.name, self.kernels.len())
    }
}

/// Combines per-kernel average powers into the application's average
/// power by weighting each kernel with its share of the total execution
/// time (the Section V-A rule). `parts` holds
/// `(average power, total time)` per kernel.
///
/// Returns `None` when the total time is not positive.
pub fn time_weighted_power(parts: &[(f64, f64)]) -> Option<f64> {
    let total: f64 = parts.iter().map(|(_, t)| t).sum();
    if total <= 0.0 || !total.is_finite() {
        return None;
    }
    Some(parts.iter().map(|(p, t)| p * t).sum::<f64>() / total)
}

/// A small suite of multi-kernel applications modeled on benchmarks the
/// paper's figures list with multiple entries (K-Means appears as `K-M`
/// and `K-M_2`; SRAD as `SRAD_1`/`SRAD_2`), plus a conjugate-gradient
/// solver with three kernels of very different character.
pub fn multi_kernel_suite(spec: &DeviceSpec) -> Vec<Application> {
    use crate::UtilizationProfile;
    let mk = |name: &str, targets: &[(Component, f64)], dur: f64| {
        KernelDesc::from_utilization_profile(
            spec,
            name,
            Category::Application,
            &UtilizationProfile::new(targets.iter().copied()),
            dur,
        )
        .expect("static profiles are valid")
    };
    vec![
        Application::new(
            "KMEANS",
            [
                // Distance computation: compute-leaning.
                (
                    mk(
                        "kmeans_distance",
                        &[
                            (Component::Int, 0.30),
                            (Component::Sp, 0.55),
                            (Component::L2Cache, 0.40),
                            (Component::Dram, 0.45),
                        ],
                        0.04,
                    ),
                    1,
                ),
                // Centroid update: streaming reduction, memory-bound.
                (
                    mk(
                        "kmeans_update",
                        &[
                            (Component::Int, 0.20),
                            (Component::Sp, 0.15),
                            (Component::L2Cache, 0.45),
                            (Component::Dram, 0.70),
                        ],
                        0.02,
                    ),
                    1,
                ),
            ],
        )
        .expect("kmeans is well-formed"),
        Application::new(
            "SRAD",
            [
                (
                    mk(
                        "srad_kernel1",
                        &[
                            (Component::Sp, 0.50),
                            (Component::Sf, 0.10),
                            (Component::L2Cache, 0.35),
                            (Component::Dram, 0.47),
                        ],
                        0.03,
                    ),
                    2,
                ),
                (
                    mk(
                        "srad_kernel2",
                        &[
                            (Component::Sp, 0.45),
                            (Component::L2Cache, 0.30),
                            (Component::Dram, 0.42),
                        ],
                        0.03,
                    ),
                    2,
                ),
            ],
        )
        .expect("srad is well-formed"),
        Application::new(
            "CG",
            [
                // SpMV: bandwidth-bound.
                (
                    mk(
                        "cg_spmv",
                        &[
                            (Component::Int, 0.25),
                            (Component::Sp, 0.20),
                            (Component::L2Cache, 0.50),
                            (Component::Dram, 0.75),
                        ],
                        0.05,
                    ),
                    1,
                ),
                // Dot products: reduction with shared memory.
                (
                    mk(
                        "cg_dot",
                        &[
                            (Component::Sp, 0.45),
                            (Component::SharedMem, 0.40),
                            (Component::Dram, 0.30),
                        ],
                        0.01,
                    ),
                    2,
                ),
                // AXPY: pure streaming.
                (
                    mk(
                        "cg_axpy",
                        &[
                            (Component::Sp, 0.15),
                            (Component::Dram, 0.80),
                            (Component::L2Cache, 0.45),
                        ],
                        0.01,
                    ),
                    3,
                ),
            ],
        )
        .expect("cg is well-formed"),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpm_spec::devices;

    #[test]
    fn construction_requires_work() {
        let spec = devices::gtx_titan_x();
        let k = crate::microbenchmark_suite(&spec)[0].clone();
        assert!(Application::new("a", [(k.clone(), 0)]).is_err());
        assert!(Application::new("a", []).is_err());
        assert!(Application::new("a", [(k, 2)]).is_ok());
    }

    #[test]
    fn weighted_power_is_the_section_5a_rule() {
        // Two kernels: 100 W for 3 s, 200 W for 1 s -> 125 W.
        let p = time_weighted_power(&[(100.0, 3.0), (200.0, 1.0)]).unwrap();
        assert!((p - 125.0).abs() < 1e-12);
        assert_eq!(time_weighted_power(&[]), None);
        assert_eq!(time_weighted_power(&[(100.0, 0.0)]), None);
    }

    #[test]
    fn weighted_power_is_bounded_by_extremes() {
        let p = time_weighted_power(&[(80.0, 1.0), (120.0, 2.0), (100.0, 0.5)]).unwrap();
        assert!(p > 80.0 && p < 120.0);
    }

    #[test]
    fn suite_has_multi_kernel_apps_on_every_device() {
        for spec in devices::all() {
            let apps = multi_kernel_suite(&spec);
            assert_eq!(apps.len(), 3);
            for app in &apps {
                assert!(app.kernels().len() >= 2, "{}", app.name());
                assert!(app.kernels().iter().any(|(_, c)| *c > 0));
            }
        }
    }

    #[test]
    fn cg_kernels_span_memory_and_compute_characters() {
        let spec = devices::gtx_titan_x();
        let apps = multi_kernel_suite(&spec);
        let cg = apps.iter().find(|a| a.name() == "CG").unwrap();
        let spmv = &cg.kernels()[0].0;
        let axpy = &cg.kernels()[2].0;
        // SpMV moves more DRAM bytes per SP instruction than AXPY has SP
        // work relative to its size; both are DRAM-heavy but distinct.
        assert!(spmv.bytes(Component::Dram) > 0.0);
        assert!(axpy.bytes(Component::Dram) > 0.0);
        assert_ne!(spmv, axpy);
    }

    #[test]
    fn serde_round_trip() {
        let spec = devices::tesla_k40c();
        let apps = multi_kernel_suite(&spec);
        let json = gpm_json::to_string(&apps[0]).unwrap();
        let back: Application = gpm_json::from_str(&json).unwrap();
        assert_eq!(apps[0], back);
    }

    #[test]
    fn display_shows_kernel_count() {
        let spec = devices::tesla_k40c();
        let apps = multi_kernel_suite(&spec);
        assert_eq!(apps[2].to_string(), "CG (3 kernels)");
    }
}
