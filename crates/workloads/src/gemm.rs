//! Parameterized dense matrix multiply (`matrixMulCUBLAS`, Fig. 9).
//!
//! Fig. 9 studies how the *input size* changes component utilizations and
//! hence power: a 64x64 multiply is latency/cache-bound, 512x512 begins to
//! saturate the SP pipeline, and 4096x4096 runs the SP units at ~0.92
//! utilization with substantially higher L2/DRAM pressure. The descriptor
//! reproduces this with a classic tiled-GEMM traffic model.

use crate::{Category, KernelDesc, WorkloadError};
use gpm_spec::{Component, DeviceSpec};

/// Builds a `matrixMulCUBLAS`-style kernel multiplying two `n x n`
/// single-precision matrices.
///
/// Work model (tile size `t = 32`, the CUBLAS-like blocking the paper's
/// device generation uses):
/// - SP work: `2·n³` flops fused into `n³/32` FMA warp-instructions;
/// - L2 traffic: each tile pass streams the `A` and `B` panels,
///   `≈ 2·n³/t · 4` bytes;
/// - DRAM traffic: panel reuse in L2 divides that by the reuse factor
///   `r`, floored at the compulsory `3·4·n²` bytes;
/// - shared-memory traffic: both input tiles are staged, `≈ 2·n³/t · 8`
///   bytes served from shared memory after staging.
///
/// Small matrices (`n ≲ 128`) underfill the GPU, which appears as a
/// reduced issue efficiency — the Fig. 9 effect where the 64x64 multiply
/// consumes far less power at identical frequencies.
///
/// # Errors
///
/// Returns [`WorkloadError::InvalidQuantity`] if `n == 0`.
///
/// # Example
///
/// ```
/// use gpm_spec::devices;
/// use gpm_workloads::gemm;
///
/// let spec = devices::gtx_titan_x();
/// let small = gemm(&spec, 64)?;
/// let large = gemm(&spec, 4096)?;
/// assert!(large.issue_efficiency() > small.issue_efficiency());
/// # Ok::<(), gpm_workloads::WorkloadError>(())
/// ```
pub fn gemm(spec: &DeviceSpec, n: u32) -> Result<KernelDesc, WorkloadError> {
    if n == 0 {
        return Err(WorkloadError::InvalidQuantity {
            field: "matrix_size",
            value: 0.0,
        });
    }
    let nf = f64::from(n);
    let tile = 32.0;
    let warp_size = f64::from(spec.warp_size());

    // Repeat small multiplies so every size produces a comparable amount
    // of total work (the measurement protocol would do this anyway).
    let reps = (f64::from(4096_u32 / n.min(4096)).powi(2)).max(1.0);

    let flops_warps = nf * nf * nf / warp_size * reps; // n^3 FMAs / 32 lanes
                                                       // Register blocking doubles the effective tile for L2 traffic.
    let l2_bytes = 2.0 * nf * nf * nf / (2.0 * tile) * 4.0 * reps;
    let shared_bytes = 2.0 * nf * nf * nf / tile * 8.0 * reps;
    // L2 reuse of the panels: grows with how many tiles fit, capped by
    // working-set effects for huge matrices.
    let reuse = (nf / tile).clamp(1.0, 12.0);
    let dram_bytes = (l2_bytes / reuse).max(3.0 * 4.0 * nf * nf * reps);
    // All DRAM traffic passes through the L2 (compulsory-miss floor).
    let l2_bytes = l2_bytes.max(dram_bytes);

    // Device fill: an n x n multiply launches (n/t)^2 thread blocks; the
    // GPU needs a few blocks per SM to hide latency.
    let blocks = (nf / tile).powi(2);
    let fill = (blocks / (4.0 * f64::from(spec.num_sms()))).clamp(0.3, 1.0);
    let eta = 0.92 * fill.powf(0.35);

    KernelDesc::builder(format!("CUBLAS_{n}x{n}"), Category::Application)
        .warp_insts(Component::Sp, flops_warps)
        .warp_insts(Component::Int, flops_warps * 0.08)
        .shared_bytes(shared_bytes, 0.5)
        .l2_bytes(l2_bytes, 0.8)
        .dram_bytes(dram_bytes, 0.7)
        .latency_cycles(5.0e5 * reps.sqrt())
        .issue_efficiency(eta)
        .build()
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpm_spec::devices;

    #[test]
    fn rejects_zero_size() {
        assert!(gemm(&devices::gtx_titan_x(), 0).is_err());
    }

    #[test]
    fn flop_count_scales_cubically_per_rep() {
        let spec = devices::gtx_titan_x();
        let a = gemm(&spec, 1024).unwrap();
        let b = gemm(&spec, 2048).unwrap();
        // reps: 16 for 1024, 4 for 2048 -> total work ratio 8/4 = 2.
        let ratio = b.warp_insts(Component::Sp) / a.warp_insts(Component::Sp);
        assert!((ratio - 2.0).abs() < 1e-9, "ratio {ratio}");
    }

    #[test]
    fn larger_matrices_use_device_more_efficiently() {
        let spec = devices::gtx_titan_x();
        let sizes = [64, 512, 4096];
        let etas: Vec<f64> = sizes
            .iter()
            .map(|&n| gemm(&spec, n).unwrap().issue_efficiency())
            .collect();
        assert!(etas[0] < etas[1] && etas[1] <= etas[2], "{etas:?}");
        assert!(etas[2] > 0.9);
    }

    #[test]
    fn arithmetic_intensity_grows_with_size() {
        // DRAM bytes per flop must drop as reuse improves.
        let spec = devices::gtx_titan_x();
        let small = gemm(&spec, 128).unwrap();
        let large = gemm(&spec, 4096).unwrap();
        let ai = |k: &KernelDesc| k.warp_insts(Component::Sp) / k.bytes(Component::Dram);
        assert!(ai(&large) > ai(&small));
    }

    #[test]
    fn l2_traffic_exceeds_dram_traffic() {
        let spec = devices::titan_xp();
        for n in [64, 512, 4096] {
            let k = gemm(&spec, n).unwrap();
            assert!(
                k.bytes(Component::L2Cache) >= k.bytes(Component::Dram),
                "n={n}"
            );
        }
    }

    #[test]
    fn tiny_and_huge_sizes_are_well_formed() {
        let spec = devices::tesla_k40c();
        for n in [1, 16, 31, 33, 8192] {
            let k = gemm(&spec, n).unwrap();
            assert!(k.issue_efficiency() > 0.0 && k.issue_efficiency() <= 1.0);
            assert!(k.bytes(Component::Dram) > 0.0);
        }
    }
}
