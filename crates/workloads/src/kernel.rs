//! Kernel descriptors: the workload representation executed by the
//! simulated GPU.

use gpm_json::impl_json;
use gpm_spec::{Component, DeviceSpec, FreqConfig};
use std::collections::BTreeMap;
use std::fmt;

/// Errors produced when constructing kernel descriptors.
#[derive(Debug, Clone, PartialEq)]
pub enum WorkloadError {
    /// A work quantity or fraction was negative, NaN or infinite.
    InvalidQuantity {
        /// The offending field.
        field: &'static str,
        /// The provided value.
        value: f64,
    },
    /// The descriptor carries no work at all and no latency, so its
    /// execution time would be zero.
    NoWork,
    /// A utilization target was outside `[0, 1]`.
    InvalidUtilization(Component, f64),
}

impl fmt::Display for WorkloadError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WorkloadError::InvalidQuantity { field, value } => {
                write!(
                    f,
                    "invalid value {value} for `{field}` (must be finite and non-negative)"
                )
            }
            WorkloadError::NoWork => {
                write!(
                    f,
                    "kernel has zero work and zero latency; execution time would be zero"
                )
            }
            WorkloadError::InvalidUtilization(c, u) => {
                write!(f, "utilization target {u} for {c} is outside [0, 1]")
            }
        }
    }
}

impl std::error::Error for WorkloadError {}

/// Benchmark family a kernel belongs to (the groups on the Fig. 5 x-axis,
/// plus the application categories of the validation set).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Category {
    /// Integer arithmetic microbenchmarks.
    Int,
    /// Single-precision microbenchmarks.
    Sp,
    /// Double-precision microbenchmarks.
    Dp,
    /// Special-function microbenchmarks.
    Sf,
    /// L2-cache microbenchmarks.
    L2,
    /// Shared-memory microbenchmarks.
    Shared,
    /// DRAM microbenchmarks.
    Dram,
    /// Mixed-component microbenchmarks.
    Mix,
    /// Awake GPU with no executing kernel.
    Idle,
    /// Full application from a standard benchmark suite.
    Application,
}

impl_json!(
    enum Category {
        Int,
        Sp,
        Dp,
        Sf,
        L2,
        Shared,
        Dram,
        Mix,
        Idle,
        Application,
    }
);

impl fmt::Display for Category {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Category::Int => "INT",
            Category::Sp => "SP",
            Category::Dp => "DP",
            Category::Sf => "SF",
            Category::L2 => "L2",
            Category::Shared => "Shared",
            Category::Dram => "DRAM",
            Category::Mix => "MIX",
            Category::Idle => "Idle",
            Category::Application => "Application",
        };
        f.write_str(s)
    }
}

/// A device-independent description of one GPU kernel launch.
///
/// All quantities are *whole-launch totals across the whole GPU*:
/// warp-instruction counts per execution pipeline and bytes moved through
/// each memory level. The simulator turns these into an execution time and
/// per-component utilizations with a roofline model; see
/// `gpm_sim::PerfModel`.
///
/// The INT and SP pipelines share issue ports on all three studied devices
/// (Table I: their warp events are "combined into the same set of events,
/// making them indistinguishable"), so the simulator's throughput
/// constraint applies to `warp_insts(Int) + warp_insts(Sp)` jointly.
///
/// # Example
///
/// ```
/// use gpm_workloads::{Category, KernelDesc};
/// use gpm_spec::Component;
///
/// let k = KernelDesc::builder("axpy", Category::Application)
///     .warp_insts(Component::Sp, 4.0e9)
///     .dram_bytes(6.0e9, 0.67)
///     .l2_bytes(6.0e9, 0.67)
///     .latency_cycles(1.0e6)
///     .build()?;
/// assert_eq!(k.warp_insts(Component::Sp), 4.0e9);
/// # Ok::<(), gpm_workloads::WorkloadError>(())
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct KernelDesc {
    name: String,
    category: Category,
    warp_int: f64,
    warp_sp: f64,
    warp_dp: f64,
    warp_sf: f64,
    shared_bytes: f64,
    l2_bytes: f64,
    dram_bytes: f64,
    shared_load_fraction: f64,
    l2_read_fraction: f64,
    dram_read_fraction: f64,
    latency_cycles: f64,
    issue_efficiency: f64,
    shared_bank_conflict_factor: f64,
    dram_coalescing: f64,
}

impl_json!(struct KernelDesc {
    name,
    category,
    warp_int,
    warp_sp,
    warp_dp,
    warp_sf,
    shared_bytes,
    l2_bytes,
    dram_bytes,
    shared_load_fraction,
    l2_read_fraction,
    dram_read_fraction,
    latency_cycles,
    issue_efficiency,
    shared_bank_conflict_factor = one(),
    dram_coalescing = one(),
});

fn one() -> f64 {
    1.0
}

impl KernelDesc {
    /// Starts building a kernel descriptor.
    pub fn builder(name: impl Into<String>, category: Category) -> KernelDescBuilder {
        KernelDescBuilder::new(name, category)
    }

    /// Kernel name (benchmark label in figures).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Benchmark family.
    pub fn category(&self) -> Category {
        self.category
    }

    /// Total warp-instructions issued to the pipeline of a compute unit.
    ///
    /// Returns 0 for memory-level components (their work is in bytes).
    pub fn warp_insts(&self, unit: Component) -> f64 {
        match unit {
            Component::Int => self.warp_int,
            Component::Sp => self.warp_sp,
            Component::Dp => self.warp_dp,
            Component::Sf => self.warp_sf,
            _ => 0.0,
        }
    }

    /// Total bytes moved through a memory level.
    ///
    /// Returns 0 for compute units.
    pub fn bytes(&self, level: Component) -> f64 {
        match level {
            Component::SharedMem => self.shared_bytes,
            Component::L2Cache => self.l2_bytes,
            Component::Dram => self.dram_bytes,
            _ => 0.0,
        }
    }

    /// Fraction of a memory level's traffic that is reads (rest is writes).
    pub fn read_fraction(&self, level: Component) -> f64 {
        match level {
            Component::SharedMem => self.shared_load_fraction,
            Component::L2Cache => self.l2_read_fraction,
            Component::Dram => self.dram_read_fraction,
            _ => 0.0,
        }
    }

    /// Core-clock cycles of unoverlappable latency (dependency chains,
    /// kernel-launch overhead). This is what keeps an `Idle`-style kernel
    /// from having zero duration.
    pub fn latency_cycles(&self) -> f64 {
        self.latency_cycles
    }

    /// Issue efficiency `η ∈ (0, 1]`: the fraction of the bottleneck
    /// throughput the kernel actually sustains (occupancy limits,
    /// scheduling stalls). The bottleneck component's utilization
    /// saturates at `η` rather than 1.0.
    pub fn issue_efficiency(&self) -> f64 {
        self.issue_efficiency
    }

    /// Shared-memory bank-conflict replay factor `≥ 1`: a conflicted
    /// access pattern replays each wavefront this many times, dividing
    /// the effective shared bandwidth. The paper's shared microbenchmark
    /// chooses addresses "in a way that minimizes the shared-memory bank
    /// conflicts" — i.e. factor 1.
    pub fn shared_bank_conflict_factor(&self) -> f64 {
        self.shared_bank_conflict_factor
    }

    /// DRAM coalescing quality `∈ (0, 1]`: the fraction of the peak DRAM
    /// bandwidth an access pattern can sustain (1 = fully coalesced
    /// streaming, the microbenchmarks' pattern).
    pub fn dram_coalescing(&self) -> f64 {
        self.dram_coalescing
    }

    /// Returns a copy with every work quantity (instructions, bytes,
    /// latency) multiplied by `factor` — used to repeat kernels until the
    /// ≥ 1 s measurement window of Section V-A is reached.
    ///
    /// # Panics
    ///
    /// Panics if `factor` is not finite and positive.
    pub fn scaled(&self, factor: f64) -> KernelDesc {
        assert!(
            factor.is_finite() && factor > 0.0,
            "scale factor must be positive and finite"
        );
        KernelDesc {
            name: self.name.clone(),
            category: self.category,
            warp_int: self.warp_int * factor,
            warp_sp: self.warp_sp * factor,
            warp_dp: self.warp_dp * factor,
            warp_sf: self.warp_sf * factor,
            shared_bytes: self.shared_bytes * factor,
            l2_bytes: self.l2_bytes * factor,
            dram_bytes: self.dram_bytes * factor,
            latency_cycles: self.latency_cycles * factor,
            ..self.clone()
        }
    }

    /// Builds a kernel that, on `spec` at its reference configuration,
    /// produces approximately the given per-component utilizations for
    /// `duration_s` seconds of execution.
    ///
    /// The work totals are back-computed from the device's peak
    /// throughputs at the reference configuration:
    /// `work_c = U_c · Peak_c(ref) · T`. The issue efficiency is set to
    /// the largest target so that the roofline bottleneck lands exactly on
    /// the most-utilized component. L2 traffic is sized against the
    /// device's *nominal* L2 width (the model itself never sees that
    /// number — it measures the effective L2 peak from microbenchmarks).
    ///
    /// This is how application descriptors (Table III) and the
    /// arithmetic-intensity sweeps of the microbenchmark suite are
    /// constructed.
    ///
    /// # Errors
    ///
    /// Returns [`WorkloadError::InvalidUtilization`] if a target is
    /// outside `[0, 1]` and [`WorkloadError::NoWork`] if all targets are
    /// zero and no latency results.
    pub fn from_utilization_profile(
        spec: &DeviceSpec,
        name: impl Into<String>,
        category: Category,
        profile: &UtilizationProfile,
        duration_s: f64,
    ) -> Result<KernelDesc, WorkloadError> {
        let reference: FreqConfig = spec.default_config();
        for (&c, &u) in &profile.targets {
            if !(0.0..=1.0).contains(&u) || !u.is_finite() {
                return Err(WorkloadError::InvalidUtilization(c, u));
            }
        }
        let u = |c: Component| profile.targets.get(&c).copied().unwrap_or(0.0);
        let eta = Component::ALL
            .iter()
            .map(|&c| u(c))
            .fold(0.0f64, f64::max)
            .clamp(0.05, 1.0);

        // The INT and SP pipelines share throughput; splitting the joint
        // peak according to the two targets keeps each individual target
        // while making their *sum* the pipeline constraint.
        let peak_intsp = spec
            .peak_warp_throughput(Component::Sp, reference.core)
            .expect("sp is a compute unit");
        let peak_dp = spec
            .peak_warp_throughput(Component::Dp, reference.core)
            .expect("dp is a compute unit");
        let peak_sf = spec
            .peak_warp_throughput(Component::Sf, reference.core)
            .expect("sf is a compute unit");
        let l2_peak = reference.core.as_hz() * f64::from(spec.nominal_l2_bytes_per_cycle());

        let mut builder = KernelDesc::builder(name, category)
            .warp_insts(Component::Int, u(Component::Int) * peak_intsp * duration_s)
            .warp_insts(Component::Sp, u(Component::Sp) * peak_intsp * duration_s)
            .warp_insts(Component::Dp, u(Component::Dp) * peak_dp * duration_s)
            .warp_insts(Component::Sf, u(Component::Sf) * peak_sf * duration_s)
            .shared_bytes(
                u(Component::SharedMem) * spec.peak_shared_bandwidth(reference.core) * duration_s,
                profile.shared_load_fraction,
            )
            .l2_bytes(
                u(Component::L2Cache) * l2_peak * duration_s,
                profile.l2_read_fraction,
            )
            .dram_bytes(
                u(Component::Dram) * spec.peak_dram_bandwidth(reference.mem) * duration_s,
                profile.dram_read_fraction,
            )
            .issue_efficiency(eta);
        // A small latency floor keeps degenerate (all-zero) profiles valid
        // and models launch overhead.
        builder = builder.latency_cycles(reference.core.as_hz() * duration_s * 0.01);
        builder.build()
    }
}

impl fmt::Display for KernelDesc {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} [{}]", self.name, self.category)
    }
}

/// Builds a *power virus*: a kernel that keeps every component near
/// saturation simultaneously (INT and SP split their shared pipeline).
/// Useful for TDP, power-capping and cooling studies — the workload class
/// behind the Fig. 9 footnote, where a prediction exceeds TDP and forces
/// a frequency fallback.
///
/// # Example
///
/// ```
/// use gpm_spec::{devices, Component};
/// use gpm_workloads::power_virus;
///
/// let virus = power_virus(&devices::gtx_titan_x());
/// assert!(virus.warp_insts(Component::Sp) > 0.0);
/// assert!(virus.bytes(Component::Dram) > 0.0);
/// ```
pub fn power_virus(spec: &DeviceSpec) -> KernelDesc {
    let profile = UtilizationProfile::new([
        (Component::Int, 0.49),
        (Component::Sp, 0.49),
        (Component::Dp, 0.95),
        (Component::Sf, 0.95),
        (Component::SharedMem, 0.95),
        (Component::L2Cache, 0.95),
        (Component::Dram, 0.95),
    ]);
    KernelDesc::from_utilization_profile(spec, "power_virus", Category::Mix, &profile, 0.05)
        .expect("the virus profile is statically valid")
}

/// Target per-component utilizations used to construct descriptors.
///
/// Components absent from the map default to zero utilization.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct UtilizationProfile {
    /// Target utilization per component, each in `[0, 1]`.
    pub targets: BTreeMap<Component, f64>,
    /// Read share of DRAM traffic (default 0.5).
    pub dram_read_fraction: f64,
    /// Read share of L2 traffic (default 0.5).
    pub l2_read_fraction: f64,
    /// Load share of shared-memory traffic (default 0.5).
    pub shared_load_fraction: f64,
}

impl_json!(struct UtilizationProfile {
    targets,
    dram_read_fraction,
    l2_read_fraction,
    shared_load_fraction,
});

impl UtilizationProfile {
    /// Creates a profile from `(component, utilization)` pairs with even
    /// read/write splits.
    pub fn new(targets: impl IntoIterator<Item = (Component, f64)>) -> Self {
        UtilizationProfile {
            targets: targets.into_iter().collect(),
            dram_read_fraction: 0.5,
            l2_read_fraction: 0.5,
            shared_load_fraction: 0.5,
        }
    }
}

/// Builder for [`KernelDesc`], validating quantities as they are set.
#[derive(Debug, Clone)]
pub struct KernelDescBuilder {
    desc: KernelDesc,
    error: Option<WorkloadError>,
}

impl KernelDescBuilder {
    fn new(name: impl Into<String>, category: Category) -> Self {
        KernelDescBuilder {
            desc: KernelDesc {
                name: name.into(),
                category,
                warp_int: 0.0,
                warp_sp: 0.0,
                warp_dp: 0.0,
                warp_sf: 0.0,
                shared_bytes: 0.0,
                l2_bytes: 0.0,
                dram_bytes: 0.0,
                shared_load_fraction: 0.5,
                l2_read_fraction: 0.5,
                dram_read_fraction: 0.5,
                latency_cycles: 0.0,
                issue_efficiency: 0.95,
                shared_bank_conflict_factor: 1.0,
                dram_coalescing: 1.0,
            },
            error: None,
        }
    }

    fn check(&mut self, field: &'static str, value: f64, max: f64) -> bool {
        if !value.is_finite() || value < 0.0 || value > max {
            self.error
                .get_or_insert(WorkloadError::InvalidQuantity { field, value });
            false
        } else {
            true
        }
    }

    /// Sets total warp-instructions for a compute pipeline. Memory-level
    /// components are ignored (their work is set in bytes).
    pub fn warp_insts(mut self, unit: Component, count: f64) -> Self {
        if self.check("warp_insts", count, f64::INFINITY) {
            match unit {
                Component::Int => self.desc.warp_int = count,
                Component::Sp => self.desc.warp_sp = count,
                Component::Dp => self.desc.warp_dp = count,
                Component::Sf => self.desc.warp_sf = count,
                _ => {}
            }
        }
        self
    }

    /// Sets total shared-memory bytes and the load fraction.
    pub fn shared_bytes(mut self, bytes: f64, load_fraction: f64) -> Self {
        if self.check("shared_bytes", bytes, f64::INFINITY)
            && self.check("shared_load_fraction", load_fraction, 1.0)
        {
            self.desc.shared_bytes = bytes;
            self.desc.shared_load_fraction = load_fraction;
        }
        self
    }

    /// Sets total L2 bytes and the read fraction.
    pub fn l2_bytes(mut self, bytes: f64, read_fraction: f64) -> Self {
        if self.check("l2_bytes", bytes, f64::INFINITY)
            && self.check("l2_read_fraction", read_fraction, 1.0)
        {
            self.desc.l2_bytes = bytes;
            self.desc.l2_read_fraction = read_fraction;
        }
        self
    }

    /// Sets total DRAM bytes and the read fraction.
    pub fn dram_bytes(mut self, bytes: f64, read_fraction: f64) -> Self {
        if self.check("dram_bytes", bytes, f64::INFINITY)
            && self.check("dram_read_fraction", read_fraction, 1.0)
        {
            self.desc.dram_bytes = bytes;
            self.desc.dram_read_fraction = read_fraction;
        }
        self
    }

    /// Sets the unoverlappable latency in core cycles.
    pub fn latency_cycles(mut self, cycles: f64) -> Self {
        if self.check("latency_cycles", cycles, f64::INFINITY) {
            self.desc.latency_cycles = cycles;
        }
        self
    }

    /// Sets the issue efficiency `η ∈ (0, 1]`.
    pub fn issue_efficiency(mut self, eta: f64) -> Self {
        if self.check("issue_efficiency", eta, 1.0) && eta > 0.0 {
            self.desc.issue_efficiency = eta;
        } else if eta <= 0.0 {
            self.error.get_or_insert(WorkloadError::InvalidQuantity {
                field: "issue_efficiency",
                value: eta,
            });
        }
        self
    }

    /// Sets the shared-memory bank-conflict replay factor (`>= 1`).
    pub fn shared_bank_conflicts(mut self, factor: f64) -> Self {
        if !factor.is_finite() || factor < 1.0 {
            self.error.get_or_insert(WorkloadError::InvalidQuantity {
                field: "shared_bank_conflict_factor",
                value: factor,
            });
        } else {
            self.desc.shared_bank_conflict_factor = factor;
        }
        self
    }

    /// Sets the DRAM coalescing quality (`(0, 1]`).
    pub fn dram_coalescing(mut self, quality: f64) -> Self {
        if !quality.is_finite() || quality <= 0.0 || quality > 1.0 {
            self.error.get_or_insert(WorkloadError::InvalidQuantity {
                field: "dram_coalescing",
                value: quality,
            });
        } else {
            self.desc.dram_coalescing = quality;
        }
        self
    }

    /// Finalizes the descriptor.
    ///
    /// # Errors
    ///
    /// Returns the first validation error recorded by a setter, or
    /// [`WorkloadError::NoWork`] if the kernel has neither work nor
    /// latency.
    pub fn build(self) -> Result<KernelDesc, WorkloadError> {
        if let Some(e) = self.error {
            return Err(e);
        }
        let d = &self.desc;
        let total = d.warp_int
            + d.warp_sp
            + d.warp_dp
            + d.warp_sf
            + d.shared_bytes
            + d.l2_bytes
            + d.dram_bytes
            + d.latency_cycles;
        if total <= 0.0 {
            return Err(WorkloadError::NoWork);
        }
        Ok(self.desc)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpm_spec::devices;

    fn simple() -> KernelDesc {
        KernelDesc::builder("k", Category::Sp)
            .warp_insts(Component::Sp, 1.0e9)
            .dram_bytes(2.0e9, 0.75)
            .build()
            .unwrap()
    }

    #[test]
    fn builder_round_trips_quantities() {
        let k = simple();
        assert_eq!(k.warp_insts(Component::Sp), 1.0e9);
        assert_eq!(k.warp_insts(Component::Int), 0.0);
        assert_eq!(k.bytes(Component::Dram), 2.0e9);
        assert_eq!(k.read_fraction(Component::Dram), 0.75);
        assert_eq!(k.bytes(Component::Sp), 0.0);
        assert_eq!(k.issue_efficiency(), 0.95);
    }

    #[test]
    fn builder_rejects_negative_and_nan() {
        let e = KernelDesc::builder("k", Category::Sp)
            .warp_insts(Component::Sp, -1.0)
            .build()
            .unwrap_err();
        assert!(matches!(
            e,
            WorkloadError::InvalidQuantity {
                field: "warp_insts",
                ..
            }
        ));
        let e = KernelDesc::builder("k", Category::Sp)
            .dram_bytes(f64::NAN, 0.5)
            .build()
            .unwrap_err();
        assert!(matches!(e, WorkloadError::InvalidQuantity { .. }));
        let e = KernelDesc::builder("k", Category::Sp)
            .dram_bytes(1.0, 1.5)
            .build()
            .unwrap_err();
        assert!(matches!(
            e,
            WorkloadError::InvalidQuantity {
                field: "dram_read_fraction",
                ..
            }
        ));
    }

    #[test]
    fn builder_rejects_empty_kernel() {
        let e = KernelDesc::builder("k", Category::Idle)
            .build()
            .unwrap_err();
        assert_eq!(e, WorkloadError::NoWork);
        // Latency-only kernels are fine (that is the Idle kernel).
        assert!(KernelDesc::builder("idle", Category::Idle)
            .latency_cycles(1.0e6)
            .build()
            .is_ok());
    }

    #[test]
    fn zero_issue_efficiency_is_rejected() {
        let e = KernelDesc::builder("k", Category::Sp)
            .warp_insts(Component::Sp, 1.0)
            .issue_efficiency(0.0)
            .build()
            .unwrap_err();
        assert!(matches!(
            e,
            WorkloadError::InvalidQuantity {
                field: "issue_efficiency",
                ..
            }
        ));
    }

    #[test]
    fn access_quality_factors_validate_and_default() {
        let k = simple();
        assert_eq!(k.shared_bank_conflict_factor(), 1.0);
        assert_eq!(k.dram_coalescing(), 1.0);
        let k = KernelDesc::builder("conflicted", Category::Shared)
            .shared_bytes(1.0e9, 0.5)
            .shared_bank_conflicts(4.0)
            .dram_coalescing(0.5)
            .build()
            .unwrap();
        assert_eq!(k.shared_bank_conflict_factor(), 4.0);
        assert_eq!(k.dram_coalescing(), 0.5);
        // Out-of-range values are rejected.
        assert!(KernelDesc::builder("x", Category::Shared)
            .shared_bytes(1.0, 0.5)
            .shared_bank_conflicts(0.5)
            .build()
            .is_err());
        assert!(KernelDesc::builder("x", Category::Dram)
            .dram_bytes(1.0, 0.5)
            .dram_coalescing(0.0)
            .build()
            .is_err());
        assert!(KernelDesc::builder("x", Category::Dram)
            .dram_bytes(1.0, 0.5)
            .dram_coalescing(1.5)
            .build()
            .is_err());
    }

    #[test]
    fn scaling_multiplies_all_work() {
        let k = simple().scaled(3.0);
        assert_eq!(k.warp_insts(Component::Sp), 3.0e9);
        assert_eq!(k.bytes(Component::Dram), 6.0e9);
        assert_eq!(k.read_fraction(Component::Dram), 0.75);
        assert_eq!(k.issue_efficiency(), 0.95);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn scaling_by_zero_panics() {
        let _ = simple().scaled(0.0);
    }

    #[test]
    fn profile_construction_sets_bottleneck_efficiency() {
        let spec = devices::gtx_titan_x();
        let profile = UtilizationProfile::new([
            (Component::Sp, 0.8),
            (Component::Dram, 0.4),
            (Component::L2Cache, 0.3),
        ]);
        let k = KernelDesc::from_utilization_profile(
            &spec,
            "app",
            Category::Application,
            &profile,
            0.05,
        )
        .unwrap();
        assert_eq!(k.issue_efficiency(), 0.8);
        assert!(k.warp_insts(Component::Sp) > 0.0);
        assert!(k.bytes(Component::Dram) > 0.0);
        assert_eq!(k.warp_insts(Component::Dp), 0.0);
    }

    #[test]
    fn profile_rejects_out_of_range_target() {
        let spec = devices::gtx_titan_x();
        let profile = UtilizationProfile::new([(Component::Sp, 1.2)]);
        let e =
            KernelDesc::from_utilization_profile(&spec, "x", Category::Application, &profile, 0.05)
                .unwrap_err();
        assert!(matches!(
            e,
            WorkloadError::InvalidUtilization(Component::Sp, _)
        ));
    }

    #[test]
    fn profile_work_scales_with_duration() {
        let spec = devices::gtx_titan_x();
        let profile = UtilizationProfile::new([(Component::Sp, 0.5)]);
        let a =
            KernelDesc::from_utilization_profile(&spec, "a", Category::Application, &profile, 0.05)
                .unwrap();
        let b =
            KernelDesc::from_utilization_profile(&spec, "b", Category::Application, &profile, 0.10)
                .unwrap();
        let ratio = b.warp_insts(Component::Sp) / a.warp_insts(Component::Sp);
        assert!((ratio - 2.0).abs() < 1e-12);
    }

    #[test]
    fn serde_round_trip() {
        let k = simple();
        let json = gpm_json::to_string(&k).unwrap();
        let back: KernelDesc = gpm_json::from_str(&json).unwrap();
        assert_eq!(k, back);
    }

    #[test]
    fn missing_quality_fields_default_to_one() {
        // Serialized kernels from before the access-quality fields were
        // added must still parse (the serde `default` behaviour).
        let json = gpm_json::to_string(&simple()).unwrap();
        let trimmed = json
            .replace(",\"shared_bank_conflict_factor\":1", "")
            .replace(",\"dram_coalescing\":1", "");
        assert_ne!(json, trimmed, "fields should have been present");
        let back: KernelDesc = gpm_json::from_str(&trimmed).unwrap();
        assert_eq!(back.shared_bank_conflict_factor(), 1.0);
        assert_eq!(back.dram_coalescing(), 1.0);
    }

    #[test]
    fn display_contains_name_and_category() {
        assert_eq!(simple().to_string(), "k [SP]");
    }
}
