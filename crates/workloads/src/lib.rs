//! Kernel descriptors and benchmark suites for GPU power modeling.
//!
//! A real GPU executes CUDA kernels; the simulated substrate executes
//! [`KernelDesc`] *descriptors* that capture exactly the characteristics
//! the paper shows to matter for power (Section II-B): the instruction mix
//! across the INT/SP/DP/SF pipelines, the bytes moved through shared
//! memory, L2 and DRAM, the unoverlappable latency, and the issue
//! efficiency.
//!
//! Two suites reproduce the paper's methodology:
//!
//! - [`microbenchmark_suite`] — the 83 training microbenchmarks of
//!   Section IV, sweeping arithmetic intensity per component
//!   (INT×12, SP×11, DP×12, SF×8, L2×10, Shared×10, DRAM×12, MIX×7 and
//!   one Idle kernel, the counts of Fig. 5);
//! - [`validation_suite`] — the 26 standard applications of Table III
//!   (Rodinia, Parboil, Polybench, CUDA SDK), *never used for fitting*,
//!   with the per-application component signatures of Figs. 2 and 10.
//!
//! [`gemm`] builds the `matrixMulCUBLAS` kernel at a given matrix size for
//! the input-size study of Fig. 9.
//!
//! # Example
//!
//! ```
//! use gpm_spec::devices;
//! use gpm_workloads::{microbenchmark_suite, validation_suite, Category};
//!
//! let spec = devices::gtx_titan_x();
//! let micro = microbenchmark_suite(&spec);
//! assert_eq!(micro.len(), 83);
//! assert_eq!(micro.iter().filter(|k| k.category() == Category::Idle).count(), 1);
//! assert_eq!(validation_suite(&spec).len(), 26);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod application;
mod gemm;
mod kernel;
mod micro;
mod synthetic;
mod validation;

pub use application::{multi_kernel_suite, time_weighted_power, Application};
pub use gemm::gemm;
pub use kernel::{
    power_virus, Category, KernelDesc, KernelDescBuilder, UtilizationProfile, WorkloadError,
};
pub use micro::microbenchmark_suite;
pub use synthetic::{launch_trace, random_application, random_kernel};
pub use validation::validation_suite;
