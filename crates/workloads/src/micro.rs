//! The 83-microbenchmark training suite (Section IV).
//!
//! The paper stresses each GPU component in isolation by sweeping the
//! *arithmetic intensity* of small CUDA kernels: a loop of `N`
//! multiply-add (or transcendental) operations per pair of global-memory
//! accesses (Figs. 3-4). Increasing `N` shifts a kernel's bottleneck from
//! the memory hierarchy to the targeted execution pipeline, tracing out
//! the utilization staircase of Fig. 5A. The suite composition matches the
//! Fig. 5 group sizes exactly: INT×12, SP×11, DP×12, SF×8, L2×10,
//! Shared×10, DRAM×12, MIX×7 plus one Idle kernel — 83 in total.

use crate::{Category, KernelDesc};
use gpm_spec::{Component, DeviceSpec};

/// Builds the 83-microbenchmark training suite for a device.
///
/// Work totals scale with the device's SM count so that the suite covers
/// comparable utilization ranges on all three paper GPUs.
///
/// # Panics
///
/// Never panics for valid [`DeviceSpec`] values: every descriptor in the
/// suite is statically well-formed.
///
/// # Example
///
/// ```
/// use gpm_spec::devices;
/// use gpm_workloads::{microbenchmark_suite, Category};
///
/// let suite = microbenchmark_suite(&devices::titan_xp());
/// assert_eq!(suite.len(), 83);
/// let sp = suite.iter().filter(|k| k.category() == Category::Sp).count();
/// assert_eq!(sp, 11);
/// ```
pub fn microbenchmark_suite(spec: &DeviceSpec) -> Vec<KernelDesc> {
    let mut suite = Vec::with_capacity(83);
    // Elements processed per launch; scaled by SM count so per-SM work is
    // device independent (2^18 elements per SM).
    let elements = f64::from(spec.num_sms()) * 262_144.0;

    // --- Arithmetic sweeps (Fig. 3a/3b): N multiply-adds per load/store.
    let int_sweep = [1, 2, 4, 8, 16, 32, 64, 128, 256, 512, 1024, 2048];
    for (i, &n) in int_sweep.iter().enumerate() {
        suite.push(arith_micro(spec, Component::Int, n, elements, i));
    }
    let sp_sweep = [1, 2, 4, 8, 16, 32, 64, 128, 256, 512, 1024];
    for (i, &n) in sp_sweep.iter().enumerate() {
        suite.push(arith_micro(spec, Component::Sp, n, elements, i));
    }
    let dp_sweep = [1, 2, 3, 4, 6, 8, 12, 16, 24, 32, 48, 64];
    for (i, &n) in dp_sweep.iter().enumerate() {
        suite.push(arith_micro(spec, Component::Dp, n, elements, i));
    }
    let sf_sweep = [1, 2, 4, 8, 16, 32, 64, 128];
    for (i, &n) in sf_sweep.iter().enumerate() {
        suite.push(arith_micro(spec, Component::Sf, n, elements, i));
    }

    // --- L2 sweep (Fig. 3d): streaming a cache-resident buffer, with a
    // growing amount of SP work diluting the L2 pressure.
    let l2_ops = [0, 1, 2, 4, 8, 16, 32, 64, 128, 256];
    for (i, &n) in l2_ops.iter().enumerate() {
        suite.push(l2_micro(spec, n, elements, i));
    }

    // --- Shared-memory sweep (Fig. 3c): conflict-free load/store pairs,
    // again diluted with integer work.
    let shared_ops = [0, 1, 2, 4, 8, 16, 32, 64, 128, 256];
    for (i, &n) in shared_ops.iter().enumerate() {
        suite.push(shared_micro(spec, n, elements, i));
    }

    // --- DRAM sweep (Fig. 3e): low arithmetic intensities and both data
    // widths, keeping the threads out of the SMs as much as possible.
    let dram_sweep: [(u32, u32); 12] = [
        (0, 4),
        (1, 4),
        (2, 4),
        (3, 4),
        (4, 4),
        (6, 4),
        (0, 8),
        (1, 8),
        (2, 8),
        (3, 8),
        (4, 8),
        (6, 8),
    ];
    for (i, &(n, width)) in dram_sweep.iter().enumerate() {
        suite.push(dram_micro(spec, n, width, elements, i));
    }

    // --- MIX benchmarks: concurrent pressure on several components.
    suite.extend(mix_micros(spec, elements));

    // --- Idle: the GPU awake with no executing kernel.
    suite.push(
        KernelDesc::builder("Idle", Category::Idle)
            .latency_cycles(spec.default_config().core.as_hz() * 0.05)
            .issue_efficiency(1.0)
            .build()
            .expect("idle kernel is valid"),
    );

    debug_assert_eq!(suite.len(), 83);
    suite
}

/// Arithmetic microbenchmark: `n` fused multiply-adds on `unit` per
/// element, one load + one store of the element (Fig. 3a/3b).
fn arith_micro(
    spec: &DeviceSpec,
    unit: Component,
    n: u32,
    elements: f64,
    index: usize,
) -> KernelDesc {
    let (label, category, dtype_bytes) = match unit {
        Component::Int => ("INT", Category::Int, 4.0),
        Component::Sp => ("SP", Category::Sp, 4.0),
        Component::Dp => ("DP", Category::Dp, 8.0),
        Component::Sf => ("SF", Category::Sf, 4.0),
        _ => unreachable!("arithmetic microbenchmarks target compute units"),
    };
    let warp_size = f64::from(spec.warp_size());
    let main_warps = elements * f64::from(n) / warp_size;
    // Loop bookkeeping: one integer add + compare per iteration batch
    // (the PTX in Fig. 4 unrolls 32x, so overhead is 2 ops per 32).
    let overhead_int = elements * f64::from(n) / 16.0 / warp_size;
    let bytes = elements * dtype_bytes * 2.0;
    let mut b = KernelDesc::builder(format!("{label}_n{n}"), category)
        .dram_bytes(bytes, 0.5)
        .l2_bytes(bytes, 0.5)
        .latency_cycles(2.0e5)
        .issue_efficiency(efficiency_for(index));
    b = match unit {
        Component::Int => b.warp_insts(Component::Int, main_warps + overhead_int),
        other => b
            .warp_insts(other, main_warps)
            .warp_insts(Component::Int, overhead_int),
    };
    b.build().expect("arithmetic microbenchmark is valid")
}

/// L2 microbenchmark: cache-resident streaming (footprint below the L2
/// capacity, so DRAM sees only compulsory traffic), diluted with `n` SP
/// operations per element.
fn l2_micro(spec: &DeviceSpec, n: u32, elements: f64, index: usize) -> KernelDesc {
    let warp_size = f64::from(spec.warp_size());
    let passes = 40.0;
    let l2_bytes = elements * 4.0 * 2.0 * passes;
    // Compulsory misses only: one pass worth of traffic.
    let dram_bytes = elements * 4.0 * 2.0;
    KernelDesc::builder(format!("L2_n{n}"), Category::L2)
        .l2_bytes(l2_bytes, 0.6)
        .dram_bytes(dram_bytes, 0.5)
        .warp_insts(Component::Sp, elements * passes * f64::from(n) / warp_size)
        .warp_insts(Component::Int, elements * passes / warp_size)
        .latency_cycles(2.0e5)
        .issue_efficiency(efficiency_for(index))
        .build()
        .expect("l2 microbenchmark is valid")
}

/// Shared-memory microbenchmark: conflict-free load/store pairs per
/// element (Fig. 3c), diluted with `n` integer operations.
fn shared_micro(spec: &DeviceSpec, n: u32, elements: f64, index: usize) -> KernelDesc {
    let warp_size = f64::from(spec.warp_size());
    let passes = 60.0;
    let shared_bytes = elements * 4.0 * 2.0 * passes;
    let io_bytes = elements * 4.0 * 2.0;
    KernelDesc::builder(format!("Shared_n{n}"), Category::Shared)
        .shared_bytes(shared_bytes, 0.5)
        .l2_bytes(io_bytes, 0.5)
        .dram_bytes(io_bytes, 0.5)
        .warp_insts(
            Component::Int,
            elements * passes * (1.0 + f64::from(n)) / warp_size,
        )
        .latency_cycles(2.0e5)
        .issue_efficiency(efficiency_for(index))
        .build()
        .expect("shared microbenchmark is valid")
}

/// DRAM microbenchmark: streaming with very low arithmetic intensity
/// (Fig. 3e); `width` bytes per element exercise both `float` and
/// `double` traffic patterns.
fn dram_micro(spec: &DeviceSpec, n: u32, width: u32, elements: f64, index: usize) -> KernelDesc {
    let warp_size = f64::from(spec.warp_size());
    let passes = 16.0;
    let bytes = elements * f64::from(width) * 2.0 * passes;
    let unit = if width == 8 {
        Component::Dp
    } else {
        Component::Sp
    };
    KernelDesc::builder(format!("DRAM_n{n}_w{width}"), Category::Dram)
        .dram_bytes(bytes, 0.55)
        .l2_bytes(bytes, 0.55)
        .warp_insts(unit, elements * passes * f64::from(n) / warp_size)
        .warp_insts(Component::Int, elements * passes / warp_size)
        .latency_cycles(2.0e5)
        .issue_efficiency(efficiency_for(index))
        .build()
        .expect("dram microbenchmark is valid")
}

/// The seven MIX microbenchmarks: concurrent multi-component pressure,
/// including the suite's peak-power points (Fig. 5B: the maximum dynamic
/// contribution occurs "in one of the Mix microbenchmarks").
fn mix_micros(spec: &DeviceSpec, elements: f64) -> Vec<KernelDesc> {
    let warp_size = f64::from(spec.warp_size());
    let e = elements;
    let mk = |name: &str,
              int: f64,
              sp: f64,
              dp: f64,
              sf: f64,
              sh: f64,
              l2: f64,
              dram: f64,
              idx: usize| {
        KernelDesc::builder(name, Category::Mix)
            .warp_insts(Component::Int, int / warp_size)
            .warp_insts(Component::Sp, sp / warp_size)
            .warp_insts(Component::Dp, dp / warp_size)
            .warp_insts(Component::Sf, sf / warp_size)
            .shared_bytes(sh, 0.5)
            .l2_bytes(l2, 0.55)
            .dram_bytes(dram, 0.55)
            .latency_cycles(2.0e5)
            .issue_efficiency(efficiency_for(idx))
            .build()
            .expect("mix microbenchmark is valid")
    };
    vec![
        // SP + DRAM: classic streaming compute.
        mk(
            "MIX_sp_dram",
            e * 16.0,
            e * 256.0,
            0.0,
            0.0,
            0.0,
            e * 128.0,
            e * 96.0,
            0,
        ),
        // INT + L2: pointer-chasing-like working set in cache.
        mk(
            "MIX_int_l2",
            e * 384.0,
            0.0,
            0.0,
            0.0,
            0.0,
            e * 256.0,
            e * 8.0,
            1,
        ),
        // SP + shared: tiled compute.
        mk(
            "MIX_sp_shared",
            e * 16.0,
            e * 320.0,
            0.0,
            0.0,
            e * 256.0,
            e * 16.0,
            e * 8.0,
            2,
        ),
        // DP + DRAM: double-precision streaming.
        mk(
            "MIX_dp_dram",
            e * 8.0,
            0.0,
            e * 24.0,
            0.0,
            0.0,
            e * 96.0,
            e * 80.0,
            3,
        ),
        // SF + SP: transcendental-heavy compute.
        mk(
            "MIX_sf_sp",
            e * 8.0,
            e * 192.0,
            0.0,
            e * 64.0,
            0.0,
            e * 16.0,
            e * 8.0,
            4,
        ),
        // All compute units together.
        mk(
            "MIX_all_compute",
            e * 192.0,
            e * 192.0,
            e * 8.0,
            e * 32.0,
            e * 64.0,
            e * 16.0,
            e * 8.0,
            5,
        ),
        // Everything at once: the suite's peak-power kernel.
        mk(
            "MIX_full",
            e * 128.0,
            e * 256.0,
            e * 8.0,
            e * 32.0,
            e * 128.0,
            e * 192.0,
            e * 128.0,
            6,
        ),
    ]
}

/// Deterministic per-benchmark issue-efficiency jitter in [0.88, 0.98]:
/// real microbenchmarks never sustain identical fractions of peak.
fn efficiency_for(index: usize) -> f64 {
    0.93 + 0.01 * ((index * 7 + 3) % 6) as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpm_spec::devices;
    use std::collections::BTreeMap;

    #[test]
    fn suite_has_83_kernels_with_fig5_group_sizes() {
        for spec in devices::all() {
            let suite = microbenchmark_suite(&spec);
            assert_eq!(suite.len(), 83, "{}", spec.name());
            let mut counts: BTreeMap<Category, usize> = BTreeMap::new();
            for k in &suite {
                *counts.entry(k.category()).or_default() += 1;
            }
            assert_eq!(counts[&Category::Int], 12);
            assert_eq!(counts[&Category::Sp], 11);
            assert_eq!(counts[&Category::Dp], 12);
            assert_eq!(counts[&Category::Sf], 8);
            assert_eq!(counts[&Category::L2], 10);
            assert_eq!(counts[&Category::Shared], 10);
            assert_eq!(counts[&Category::Dram], 12);
            assert_eq!(counts[&Category::Mix], 7);
            assert_eq!(counts[&Category::Idle], 1);
        }
    }

    #[test]
    fn names_are_unique() {
        let suite = microbenchmark_suite(&devices::gtx_titan_x());
        let mut names: Vec<&str> = suite.iter().map(|k| k.name()).collect();
        names.sort_unstable();
        let before = names.len();
        names.dedup();
        assert_eq!(names.len(), before);
    }

    #[test]
    fn arithmetic_sweep_increases_compute_work_monotonically() {
        let suite = microbenchmark_suite(&devices::gtx_titan_x());
        let sp: Vec<&KernelDesc> = suite
            .iter()
            .filter(|k| k.category() == Category::Sp)
            .collect();
        for pair in sp.windows(2) {
            assert!(
                pair[1].warp_insts(Component::Sp) > pair[0].warp_insts(Component::Sp),
                "sweep must increase SP work"
            );
        }
        // DRAM traffic stays constant within the sweep: intensity is the
        // ratio that changes.
        assert_eq!(sp[0].bytes(Component::Dram), sp[10].bytes(Component::Dram));
    }

    #[test]
    fn sf_kernels_carry_sf_work_only_plus_overhead() {
        let suite = microbenchmark_suite(&devices::gtx_titan_x());
        for k in suite.iter().filter(|k| k.category() == Category::Sf) {
            assert!(k.warp_insts(Component::Sf) > 0.0);
            assert_eq!(k.warp_insts(Component::Sp), 0.0);
            assert_eq!(k.warp_insts(Component::Dp), 0.0);
        }
    }

    #[test]
    fn l2_kernels_have_cache_resident_traffic() {
        let suite = microbenchmark_suite(&devices::gtx_titan_x());
        for k in suite.iter().filter(|k| k.category() == Category::L2) {
            assert!(
                k.bytes(Component::L2Cache) > 10.0 * k.bytes(Component::Dram),
                "L2 traffic should dwarf DRAM traffic: {}",
                k.name()
            );
        }
    }

    #[test]
    fn dram_kernels_route_all_traffic_through_l2() {
        let suite = microbenchmark_suite(&devices::gtx_titan_x());
        for k in suite.iter().filter(|k| k.category() == Category::Dram) {
            assert_eq!(k.bytes(Component::L2Cache), k.bytes(Component::Dram));
            assert!(k.bytes(Component::Dram) > 0.0);
        }
    }

    #[test]
    fn shared_kernels_stress_shared_memory() {
        let suite = microbenchmark_suite(&devices::gtx_titan_x());
        for k in suite.iter().filter(|k| k.category() == Category::Shared) {
            assert!(k.bytes(Component::SharedMem) > k.bytes(Component::Dram));
        }
    }

    #[test]
    fn idle_kernel_has_latency_only() {
        let suite = microbenchmark_suite(&devices::tesla_k40c());
        let idle = suite
            .iter()
            .find(|k| k.category() == Category::Idle)
            .unwrap();
        assert!(idle.latency_cycles() > 0.0);
        for c in Component::ALL {
            assert_eq!(idle.warp_insts(c), 0.0);
            assert_eq!(idle.bytes(c), 0.0);
        }
    }

    #[test]
    fn work_scales_with_sm_count() {
        let big = microbenchmark_suite(&devices::titan_xp()); // 30 SMs
        let small = microbenchmark_suite(&devices::tesla_k40c()); // 15 SMs
        let b = big.iter().find(|k| k.name() == "SP_n64").unwrap();
        let s = small.iter().find(|k| k.name() == "SP_n64").unwrap();
        let ratio = b.warp_insts(Component::Sp) / s.warp_insts(Component::Sp);
        assert!((ratio - 2.0).abs() < 1e-9);
    }

    #[test]
    fn efficiencies_vary_but_stay_in_band() {
        let suite = microbenchmark_suite(&devices::gtx_titan_x());
        let mut distinct: Vec<u64> = suite
            .iter()
            .map(|k| (k.issue_efficiency() * 1000.0).round() as u64)
            .collect();
        for k in &suite {
            let eta = k.issue_efficiency();
            assert!((0.85..=1.0).contains(&eta), "{}: {eta}", k.name());
        }
        distinct.sort_unstable();
        distinct.dedup();
        assert!(
            distinct.len() >= 3,
            "efficiency should vary across the suite"
        );
    }
}
