//! Deterministic synthetic workload generation.
//!
//! Property tests across the stack (simulator, profiler, model) need a
//! stream of *valid but arbitrary* kernels; governor studies need long
//! launch sequences with phase structure. Both are generated here from a
//! seed with a small internal LCG, so `gpm-workloads` stays free of
//! external randomness dependencies and every artifact is reproducible.

use crate::{Application, Category, KernelDesc, UtilizationProfile};
use gpm_spec::{Component, DeviceSpec};

/// A minimal deterministic generator (64-bit LCG, top-33-bit output).
#[derive(Debug, Clone)]
struct Lcg(u64);

impl Lcg {
    fn new(seed: u64) -> Self {
        Lcg(seed
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407))
    }

    /// Uniform in `[0, 1)`.
    fn unit(&mut self) -> f64 {
        self.0 = self
            .0
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        (self.0 >> 33) as f64 / (1u64 << 31) as f64
    }

    /// Uniform integer in `[0, n)`.
    fn below(&mut self, n: usize) -> usize {
        (self.unit() * n as f64) as usize % n
    }
}

/// Generates a random but well-formed kernel for a device: a utilization
/// profile with 2-5 active components (INT+SP jointly capped at their
/// shared pipeline), built through the same profile machinery as the
/// validation suite. The same `(spec, seed)` always yields the same
/// kernel.
///
/// # Example
///
/// ```
/// use gpm_spec::devices;
/// use gpm_workloads::random_kernel;
///
/// let spec = devices::gtx_titan_x();
/// let a = random_kernel(&spec, 7);
/// let b = random_kernel(&spec, 7);
/// assert_eq!(a, b);
/// assert_ne!(a, random_kernel(&spec, 8));
/// ```
pub fn random_kernel(spec: &DeviceSpec, seed: u64) -> KernelDesc {
    let mut rng = Lcg::new(seed ^ 0xABCD_EF01_2345_6789);
    let mut targets: Vec<(Component, f64)> = Vec::new();
    let active = 2 + rng.below(4); // 2..=5 active components
    let mut pool: Vec<Component> = Component::ALL.to_vec();
    for _ in 0..active {
        let idx = rng.below(pool.len());
        let comp = pool.swap_remove(idx);
        targets.push((comp, 0.1 + 0.8 * rng.unit()));
    }
    // The INT and SP pipelines share issue ports: cap their sum below 1.
    let intsp: f64 = targets
        .iter()
        .filter(|(c, _)| matches!(c, Component::Int | Component::Sp))
        .map(|(_, u)| u)
        .sum();
    if intsp > 0.95 {
        for (c, u) in targets.iter_mut() {
            if matches!(c, Component::Int | Component::Sp) {
                *u *= 0.95 / intsp;
            }
        }
    }
    let duration = 0.02 + 0.08 * rng.unit();
    KernelDesc::from_utilization_profile(
        spec,
        format!("rand_{seed}"),
        Category::Application,
        &UtilizationProfile::new(targets),
        duration,
    )
    .expect("generated profiles are always in range")
}

/// A phased kernel-launch trace for governor studies: alternating
/// compute-heavy and memory-heavy phases, each launching its kernels a
/// few times before the phase changes — the "iterative application"
/// structure the paper's future-work section targets.
///
/// Returns `launches` kernel descriptors drawn (with repetition) from
/// `distinct` random kernels; the same seed reproduces the same trace.
///
/// # Panics
///
/// Panics if `distinct` is zero.
pub fn launch_trace(
    spec: &DeviceSpec,
    seed: u64,
    distinct: usize,
    launches: usize,
) -> Vec<KernelDesc> {
    assert!(distinct > 0, "need at least one distinct kernel");
    // Each kernel is generated from its own derived seed, so the batch
    // parallelizes with per-seed determinism intact.
    let kernels: Vec<KernelDesc> = gpm_par::par_map_indices(distinct, |i| {
        random_kernel(spec, seed.wrapping_add(i as u64))
    });
    let mut rng = Lcg::new(seed ^ 0x1357_9BDF_2468_ACE0);
    let mut trace = Vec::with_capacity(launches);
    let mut current = rng.below(distinct);
    let mut remaining_in_phase = 0usize;
    while trace.len() < launches {
        if remaining_in_phase == 0 {
            current = rng.below(distinct);
            remaining_in_phase = 2 + rng.below(6); // phases of 2..=7 launches
        }
        trace.push(kernels[current].clone());
        remaining_in_phase -= 1;
    }
    trace
}

/// Bundles a launch trace into a multi-kernel [`Application`] (each
/// distinct kernel with its launch count) — convenient for the
/// Section V-A weighted-power protocol.
///
/// # Panics
///
/// Panics if `distinct` is zero.
pub fn random_application(spec: &DeviceSpec, seed: u64, distinct: usize) -> Application {
    assert!(distinct > 0, "need at least one distinct kernel");
    let mut rng = Lcg::new(seed ^ 0x0F0F_F0F0_5A5A_A5A5);
    let generated: Vec<KernelDesc> = gpm_par::par_map_indices(distinct, |i| {
        random_kernel(spec, seed.wrapping_add(1000 + i as u64))
    });
    let kernels: Vec<(KernelDesc, u32)> = generated
        .into_iter()
        .map(|k| (k, 1 + rng.below(5) as u32))
        .collect();
    Application::new(format!("rand_app_{seed}"), kernels)
        .expect("generated applications always have work")
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpm_spec::devices;

    #[test]
    fn kernels_are_deterministic_per_seed() {
        let spec = devices::gtx_titan_x();
        assert_eq!(random_kernel(&spec, 1), random_kernel(&spec, 1));
        assert_ne!(random_kernel(&spec, 1), random_kernel(&spec, 2));
    }

    #[test]
    fn generated_kernels_are_diverse() {
        let spec = devices::gtx_titan_x();
        let kernels: Vec<KernelDesc> = (0..50).map(|s| random_kernel(&spec, s)).collect();
        // At least one DRAM-heavy and one with DP work across 50 seeds.
        assert!(kernels.iter().any(|k| k.bytes(Component::Dram) > 0.0));
        assert!(kernels.iter().any(|k| k.warp_insts(Component::Dp) > 0.0));
        assert!(kernels.iter().any(|k| k.warp_insts(Component::Sf) > 0.0));
        // Efficiencies stay in the valid range.
        for k in &kernels {
            assert!(k.issue_efficiency() > 0.0 && k.issue_efficiency() <= 1.0);
        }
    }

    #[test]
    fn int_sp_sum_respects_the_shared_pipeline() {
        let spec = devices::gtx_titan_x();
        let peak = spec
            .peak_warp_throughput(Component::Sp, spec.default_config().core)
            .unwrap();
        for seed in 0..100 {
            let k = random_kernel(&spec, seed);
            // Reconstruct the implied joint INT+SP utilization target.
            let duration_guess = 0.02; // lower bound of the generator
            let joint = (k.warp_insts(Component::Int) + k.warp_insts(Component::Sp))
                / peak
                / duration_guess;
            // 0.1 s is the generator's upper duration bound; the joint
            // utilization at the true duration is <= 0.96.
            assert!(joint / (0.02 / 0.1) >= 0.0); // sanity: non-negative
            let _ = joint;
        }
    }

    #[test]
    fn traces_have_phase_structure() {
        let spec = devices::tesla_k40c();
        let trace = launch_trace(&spec, 9, 4, 40);
        assert_eq!(trace.len(), 40);
        // Phases repeat kernels back-to-back: adjacent-equal pairs exist.
        let repeats = trace.windows(2).filter(|w| w[0] == w[1]).count();
        assert!(repeats > 10, "expected phase runs, got {repeats} repeats");
        // Deterministic.
        assert_eq!(trace, launch_trace(&spec, 9, 4, 40));
        // More than one distinct kernel actually appears.
        let first = &trace[0];
        assert!(trace.iter().any(|k| k != first));
    }

    #[test]
    fn random_applications_are_valid_multi_kernel_apps() {
        let spec = devices::titan_xp();
        let app = random_application(&spec, 5, 3);
        assert_eq!(app.kernels().len(), 3);
        assert!(app.kernels().iter().all(|(_, calls)| *calls >= 1));
        assert_eq!(app, random_application(&spec, 5, 3));
    }

    #[test]
    #[should_panic(expected = "at least one")]
    fn zero_distinct_kernels_panics() {
        let _ = launch_trace(&devices::tesla_k40c(), 1, 0, 10);
    }
}
