//! The 26 validation applications (Table III).
//!
//! These descriptors model the *component signatures* of the standard
//! benchmarks the paper validates with — Rodinia, Parboil, Polybench and
//! the CUDA SDK — and are never used to fit the model, mirroring the
//! paper's "bias-free validation ... for new (unseen) applications"
//! protocol (Section V-A).
//!
//! The per-application utilization mixes follow the published behaviour:
//! Fig. 2 gives BlackScholes (DRAM 0.85, L2 0.47, SF 0.19, SP 0.25) and
//! CUTCP (SP 0.92, Shared 0.51, SF 0.11, INT 0.15); Fig. 10 shows the
//! remaining applications covering "large differences in the utilization
//! levels of the different GPU components" — memory-bound streamers
//! (Streamcluster, LBM, GESUMMV), dense compute (GEMM family),
//! double-precision (SYRK_DOUBLE), transcendental-heavy particle filters,
//! and everything between.

use crate::{Category, KernelDesc, UtilizationProfile};
use gpm_spec::{Component, DeviceSpec};

/// Per-application signature: name and target utilizations
/// (INT, SP, DP, SF, Shared, L2, DRAM) on the reference configuration.
const APPS: [(&str, [f64; 7]); 26] = [
    // Rodinia ----------------------------------------------------- INT   SP    DP    SF  Shared  L2   DRAM
    ("STCL", [0.20, 0.30, 0.00, 0.00, 0.05, 0.50, 0.71]),
    ("BCKP", [0.15, 0.35, 0.00, 0.00, 0.25, 0.35, 0.52]),
    ("LUD", [0.20, 0.47, 0.00, 0.00, 0.40, 0.25, 0.19]),
    ("GAUSS", [0.15, 0.30, 0.00, 0.00, 0.05, 0.30, 0.37]),
    ("HOTS", [0.20, 0.56, 0.00, 0.00, 0.30, 0.35, 0.25]),
    ("K-M", [0.30, 0.25, 0.00, 0.00, 0.05, 0.40, 0.61]),
    ("K-M_2", [0.25, 0.20, 0.00, 0.00, 0.05, 0.35, 0.52]),
    ("PF_N", [0.20, 0.40, 0.00, 0.30, 0.10, 0.25, 0.30]),
    ("PF_F", [0.20, 0.45, 0.00, 0.25, 0.10, 0.25, 0.24]),
    ("SRAD_1", [0.15, 0.50, 0.00, 0.10, 0.05, 0.35, 0.47]),
    ("SRAD_2", [0.15, 0.45, 0.00, 0.10, 0.05, 0.30, 0.42]),
    // Parboil
    ("CUTCP", [0.15, 0.92, 0.00, 0.11, 0.51, 0.15, 0.10]),
    ("LBM", [0.15, 0.30, 0.00, 0.00, 0.00, 0.50, 0.75]),
    // Polybench
    ("2MM", [0.15, 0.80, 0.00, 0.00, 0.30, 0.30, 0.28]),
    ("3MM", [0.15, 0.78, 0.00, 0.00, 0.30, 0.30, 0.30]),
    ("FDTD", [0.15, 0.40, 0.00, 0.00, 0.05, 0.45, 0.55]),
    ("SYRK", [0.15, 0.70, 0.00, 0.00, 0.20, 0.35, 0.26]),
    ("CORR", [0.15, 0.50, 0.00, 0.05, 0.10, 0.35, 0.40]),
    ("GEMM", [0.15, 0.85, 0.00, 0.00, 0.35, 0.30, 0.21]),
    ("GESUMV", [0.10, 0.25, 0.00, 0.00, 0.00, 0.50, 0.70]),
    ("GRAMS", [0.15, 0.40, 0.00, 0.05, 0.10, 0.40, 0.50]),
    ("SYRK_D", [0.15, 0.10, 0.60, 0.00, 0.20, 0.30, 0.23]),
    ("3DCNV", [0.15, 0.35, 0.00, 0.00, 0.10, 0.45, 0.64]),
    ("COVAR", [0.15, 0.45, 0.00, 0.05, 0.10, 0.35, 0.45]),
    // CUDA SDK
    ("BLCKSC", [0.20, 0.25, 0.00, 0.19, 0.00, 0.47, 0.85]),
    ("CGUM", [0.15, 0.30, 0.00, 0.00, 0.05, 0.40, 0.60]),
];

/// Builds the 26-application validation suite for a device.
///
/// Each application runs for roughly 60 ms at the reference configuration
/// before the measurement protocol's repetition logic kicks in.
///
/// # Example
///
/// ```
/// use gpm_spec::devices;
/// use gpm_workloads::validation_suite;
///
/// let apps = validation_suite(&devices::gtx_titan_x());
/// assert_eq!(apps.len(), 26);
/// assert!(apps.iter().any(|k| k.name() == "BLCKSC"));
/// ```
pub fn validation_suite(spec: &DeviceSpec) -> Vec<KernelDesc> {
    APPS.iter()
        .map(|(name, u)| {
            let profile = UtilizationProfile::new([
                (Component::Int, u[0]),
                (Component::Sp, u[1]),
                (Component::Dp, u[2]),
                (Component::Sf, u[3]),
                (Component::SharedMem, u[4]),
                (Component::L2Cache, u[5]),
                (Component::Dram, u[6]),
            ]);
            KernelDesc::from_utilization_profile(spec, *name, Category::Application, &profile, 0.06)
                .expect("validation profiles are statically valid")
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpm_spec::devices;

    #[test]
    fn suite_has_26_uniquely_named_apps() {
        let apps = validation_suite(&devices::gtx_titan_x());
        assert_eq!(apps.len(), 26);
        let mut names: Vec<&str> = apps.iter().map(|k| k.name()).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), 26);
    }

    #[test]
    fn all_apps_are_application_category() {
        for k in validation_suite(&devices::tesla_k40c()) {
            assert_eq!(k.category(), Category::Application);
        }
    }

    #[test]
    fn blackscholes_matches_fig2_signature() {
        // Fig. 2A: DRAM-dominant with visible L2 and SF usage.
        let apps = validation_suite(&devices::gtx_titan_x());
        let b = apps.iter().find(|k| k.name() == "BLCKSC").unwrap();
        assert!(b.bytes(Component::Dram) > 0.0);
        assert!(b.warp_insts(Component::Sf) > 0.0);
        assert_eq!(b.warp_insts(Component::Dp), 0.0);
        // DRAM is the bottleneck, so issue efficiency equals its target.
        assert!((b.issue_efficiency() - 0.85).abs() < 1e-12);
    }

    #[test]
    fn cutcp_matches_fig2_signature() {
        // Fig. 2B: SP-dominant with heavy shared memory, light DRAM.
        let apps = validation_suite(&devices::gtx_titan_x());
        let c = apps.iter().find(|k| k.name() == "CUTCP").unwrap();
        assert!((c.issue_efficiency() - 0.92).abs() < 1e-12);
        assert!(c.bytes(Component::SharedMem) > 0.0);
    }

    #[test]
    fn syrk_double_is_the_only_dp_heavy_app() {
        let apps = validation_suite(&devices::gtx_titan_x());
        let dp_apps: Vec<&str> = apps
            .iter()
            .filter(|k| k.warp_insts(Component::Dp) > 0.0)
            .map(|k| k.name())
            .collect();
        assert_eq!(dp_apps, vec!["SYRK_D"]);
    }

    #[test]
    fn suite_spans_memory_and_compute_bound_extremes() {
        let spec = devices::gtx_titan_x();
        let apps = validation_suite(&spec);
        let dram_peak = spec.peak_dram_bandwidth(spec.default_config().mem);
        let ref_core = spec.default_config().core;
        let sp_peak = spec.peak_warp_throughput(Component::Sp, ref_core).unwrap();
        // Normalize by a common 60 ms duration.
        let dram_utils: Vec<f64> = apps
            .iter()
            .map(|k| k.bytes(Component::Dram) / dram_peak / 0.06)
            .collect();
        let sp_utils: Vec<f64> = apps
            .iter()
            .map(|k| k.warp_insts(Component::Sp) / sp_peak / 0.06)
            .collect();
        let max_dram = dram_utils.iter().cloned().fold(0.0, f64::max);
        let min_dram = dram_utils.iter().cloned().fold(1.0, f64::min);
        assert!(max_dram > 0.8, "should include a DRAM-saturated app");
        assert!(min_dram < 0.15, "should include a DRAM-light app");
        assert!(sp_utils.iter().cloned().fold(0.0, f64::max) > 0.85);
    }

    #[test]
    fn profiles_are_valid_on_every_device() {
        for spec in devices::all() {
            let apps = validation_suite(&spec);
            assert_eq!(apps.len(), 26, "{}", spec.name());
        }
    }
}
