//! DVFS management (use case 3 of Section V-B and the paper's main
//! future-work direction): profile a kernel's first invocation, then use
//! the model to pick the frequency configuration that minimizes *energy*
//! under a performance constraint — without executing the kernel at every
//! candidate configuration.
//!
//! Power comes from the model (the expensive-to-measure quantity);
//! execution time is measured per configuration by simply timing the
//! kernel, which any runtime can do.
//!
//! Run with: `cargo run --release --example dvfs_management`

use gpm::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let spec = gpm::spec::devices::gtx_titan_x();
    let mut gpu = SimulatedGpu::new(spec.clone(), 42);
    let suite = microbenchmark_suite(&spec);
    let training = Profiler::new(&mut gpu).profile_suite(&suite)?;
    let model = Estimator::new().fit(&training)?;

    // An iterative application: the first kernel call is profiled, every
    // later call reuses the chosen configuration (the paper's future-work
    // scheme for "the iterative nature of many of the most common GPU
    // applications").
    let app = validation_suite(&spec)
        .into_iter()
        .find(|k| k.name() == "SRAD_1")
        .expect("srad in validation suite");
    let profile = Profiler::new(&mut gpu).profile_at_reference(&app)?;

    let reference = spec.default_config();
    gpu.set_clocks(reference)?;
    let t_ref = gpu.execute(&app).duration_s;
    let p_ref = model.predict(&profile.utilizations, reference)?;
    println!(
        "{} at the default {}: {:.1} ms, {:.1} W, {:.2} J per call",
        app.name(),
        reference,
        t_ref * 1e3,
        p_ref,
        p_ref * t_ref
    );

    // Search the whole grid: energy = predicted power x measured time,
    // subject to at most 15% slowdown.
    let max_slowdown = 1.15;
    let mut best: Option<(FreqConfig, f64, f64, f64)> = None;
    let mut evaluated = 0;
    for config in spec.vf_grid() {
        gpu.set_clocks(config)?;
        let t = gpu.execute(&app).duration_s;
        if t > t_ref * max_slowdown {
            continue;
        }
        let p = model.predict(&profile.utilizations, config)?;
        let energy = p * t;
        evaluated += 1;
        if best.is_none_or(|(_, _, _, e)| energy < e) {
            best = Some((config, t, p, energy));
        }
    }
    let (config, t, p, energy) =
        best.expect("the reference configuration always meets the constraint");
    println!(
        "\nSearched {} configurations ({} meet the <= {:.0}% slowdown constraint).",
        spec.vf_grid().len(),
        evaluated,
        (max_slowdown - 1.0) * 100.0
    );
    println!(
        "Energy-optimal: {config} -> {:.1} ms, {:.1} W, {:.2} J per call",
        t * 1e3,
        p,
        energy
    );
    println!(
        "Savings vs default: {:.0}% energy at {:.0}% slowdown",
        100.0 * (1.0 - energy / (p_ref * t_ref)),
        100.0 * (t / t_ref - 1.0)
    );

    // Verify the pick against the sensor (not available to a real
    // deployment, which is the point of the model).
    gpu.set_clocks(config)?;
    let measured = gpu.measure_power(&app)?.watts;
    println!("Sensor check at {config}: predicted {p:.1} W, measured {measured:.1} W");
    Ok(())
}
