//! GPUs without a power sensor (use case 1 of Section V-B): build the
//! model once on an instrumented card, serialize it, and use it on a
//! *different card of the same model* that has no sensor at all — the
//! deployment the paper describes for virtualized (NVIDIA GRID) guests,
//! which "currently have no way of measuring" their power.
//!
//! Run with: `cargo run --release --example model_portability`

use gpm::core::PowerModel;
use gpm::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let spec = gpm::spec::devices::titan_xp();

    // Lab card: fully instrumented, used to build and export the model.
    let mut lab_card = SimulatedGpu::new(spec.clone(), 7);
    let suite = microbenchmark_suite(&spec);
    let training = Profiler::new(&mut lab_card).profile_suite(&suite)?;
    let model = Estimator::new().fit(&training)?;
    let exported = model.to_json()?;
    println!(
        "Model built on the lab card and exported ({} bytes of JSON).",
        exported.len()
    );

    // Production card: same GPU model, different physical card (seeded
    // physics jitter), and — crucially — we never touch its power sensor.
    let mut prod_card = SimulatedGpu::new(spec.clone(), 99);
    let imported = PowerModel::from_json(&exported)?;

    println!("\nPer-app prediction on the sensor-less production card:");
    println!(
        "{:<10} {:>11} {:>18} {:>8}",
        "app", "predicted", "actual (hidden)", "error"
    );
    let mut errors = Vec::new();
    let reference = spec.default_config();
    for app in validation_suite(&spec).iter().take(10) {
        // Events are available everywhere (CUPTI needs no power sensor).
        let profile = Profiler::new(&mut prod_card).profile_at_reference(app)?;
        let predicted = imported.predict(&profile.utilizations, reference)?;
        // Ground truth for scoring only: what the card actually draws.
        let actual = prod_card.measure_power(app)?.watts;
        let err = 100.0 * (predicted - actual) / actual;
        println!(
            "{:<10} {:>9.1} W {:>16.1} W {:>7.1}%",
            app.name(),
            predicted,
            actual,
            err
        );
        errors.push(err.abs());
    }
    let mean = errors.iter().sum::<f64>() / errors.len() as f64;
    println!(
        "\nMean absolute error across cards: {mean:.1}% — the exported model \
         transfers between cards of the same GPU model."
    );
    Ok(())
}
