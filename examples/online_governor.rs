//! Online DVFS governance (the paper's future-work loop, Section VII):
//! profile each kernel's first call, pick a V-F configuration per
//! objective, reuse it for every later call — and compare the energy
//! ledger against an ungoverned run.
//!
//! Run with: `cargo run --release --example online_governor`

use gpm::dvfs::{baseline_ledger, Governor, Objective};
use gpm::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let spec = gpm::spec::devices::gtx_titan_x();
    let mut gpu = SimulatedGpu::new(spec.clone(), 42);
    let suite = microbenchmark_suite(&spec);
    let training = Profiler::new(&mut gpu).profile_suite(&suite)?;
    let model = Estimator::new().fit(&training)?;

    // An application phase: a mix of kernels, each called repeatedly.
    let apps = validation_suite(&spec);
    let pick = |name: &str| {
        apps.iter()
            .find(|k| k.name() == name)
            .expect("app in validation suite")
            .clone()
    };
    let mut launches = Vec::new();
    for _ in 0..8 {
        launches.push(pick("LBM")); // memory-bound
        launches.push(pick("GEMM")); // compute-bound
        launches.push(pick("SRAD_1")); // mixed
    }

    let baseline = baseline_ledger(&mut gpu, &model, &launches)?;
    println!("Ungoverned (always default clocks): {baseline}");

    for objective in [
        Objective::MinEnergy,
        Objective::MinEnergyWithSlowdown(1.10),
        Objective::MinEdp,
        Objective::PowerCap(150.0),
    ] {
        let mut governor = Governor::new(&mut gpu, model.clone(), objective);
        for kernel in &launches {
            governor.run_kernel(kernel)?;
        }
        let ledger = governor.ledger();
        println!(
            "\n{objective}: {ledger}\n  energy {:+.1}% | time {:+.1}% vs ungoverned \
             ({} kernels profiled, {} cache hits)",
            100.0 * (ledger.total_energy_j() / baseline.total_energy_j() - 1.0),
            100.0 * (ledger.total_time_s() / baseline.total_time_s() - 1.0),
            governor.stats().profiled,
            governor.stats().cache_hits,
        );
        for name in ["LBM", "GEMM", "SRAD_1"] {
            let d = governor.decision_for(name).expect("kernel was governed");
            println!(
                "  {name:<7} -> {} ({:.0} W predicted, {:.2}x reference time)",
                d.config,
                d.predicted_power_w,
                d.predicted_time_s / d.reference_time_s
            );
        }
    }
    Ok(())
}
