//! Time/energy Pareto frontiers: the full trade-off view behind every
//! DVFS decision. For each application, print the non-dominated V-F
//! configurations with their runtime, predicted power and energy — how
//! much energy each unit of slowdown buys.
//!
//! Run with: `cargo run --release --example pareto_frontier`

use gpm::dvfs::pareto_frontier;
use gpm::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let spec = gpm::spec::devices::gtx_titan_x();
    let mut gpu = SimulatedGpu::new(spec.clone(), 42);
    let suite = microbenchmark_suite(&spec);
    let training = Profiler::new(&mut gpu).profile_suite(&suite)?;
    let model = Estimator::new().fit(&training)?;

    let apps = validation_suite(&spec);
    for name in ["LBM", "GEMM", "HOTS"] {
        let app = apps
            .iter()
            .find(|k| k.name() == name)
            .expect("app in validation suite");
        let frontier = pareto_frontier(&mut gpu, &model, app)?;
        println!(
            "\n{name}: {} Pareto-optimal configurations (of {}):",
            frontier.len(),
            spec.vf_grid().len()
        );
        println!(
            "{:>26} {:>10} {:>9} {:>10}",
            "configuration", "time", "power", "energy"
        );
        let fastest = frontier[0];
        for p in &frontier {
            println!(
                "{:>26} {:>8.2}ms {:>7.1} W {:>9.3} J  ({:+.0}% time, {:+.0}% energy)",
                p.config.to_string(),
                p.time_s * 1e3,
                p.power_w,
                p.energy_j(),
                100.0 * (p.time_s / fastest.time_s - 1.0),
                100.0 * (p.energy_j() / fastest.energy_j() - 1.0),
            );
        }
    }
    println!(
        "\nMemory-bound kernels expose long frontiers (core downclocks are \
         nearly free); compute-bound kernels collapse to a few points."
    );
    Ok(())
}
