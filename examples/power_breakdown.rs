//! Application power analysis (use case 2 of Section V-B): decompose an
//! application's predicted power into per-component contributions to find
//! the power bottleneck — information no sensor provides.
//!
//! Run with: `cargo run --release --example power_breakdown`

use gpm::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let spec = gpm::spec::devices::gtx_titan_x();
    let mut gpu = SimulatedGpu::new(spec.clone(), 42);
    let suite = microbenchmark_suite(&spec);
    let mut profiler = Profiler::new(&mut gpu);
    let training = profiler.profile_suite(&suite)?;
    let model = Estimator::new().fit(&training)?;

    let reference = spec.default_config();
    println!("Per-component power at {reference}:\n");
    for name in ["BLCKSC", "CUTCP", "GEMM", "SYRK_D", "LBM"] {
        let app = validation_suite(&spec)
            .into_iter()
            .find(|k| k.name() == name)
            .expect("app in validation suite");
        let profile = profiler.profile_at_reference(&app)?;
        let b = model.breakdown(&profile.utilizations, reference)?;
        println!("{name}: {b}");

        // The power bottleneck: the component with the largest dynamic
        // contribution — the optimization target the paper's use case 2
        // describes.
        let (bottleneck, watts) = b
            .components()
            .into_iter()
            .max_by(|a, b| a.1.partial_cmp(&b.1).expect("powers are finite"))
            .expect("seven components");
        println!(
            "  -> power bottleneck: {bottleneck} ({watts:.1} W, {:.0}% of dynamic)\n",
            100.0 * watts / (b.total() - b.constant())
        );
    }

    // How the decomposition shifts with DVFS: DRAM power collapses at the
    // low memory level while core components barely move (Fig. 10).
    let app = validation_suite(&spec)
        .into_iter()
        .find(|k| k.name() == "BLCKSC")
        .expect("blackscholes present");
    let profile = profiler.profile_at_reference(&app)?;
    println!("BLCKSC across memory levels (fcore = 975 MHz):");
    for mem in spec.mem_freqs() {
        let b = model.breakdown(&profile.utilizations, FreqConfig::new(reference.core, *mem))?;
        println!(
            "  fmem {:>5}: total {:6.1} W, DRAM {:5.1} W, constant {:5.1} W",
            mem.as_u32(),
            b.total(),
            b.component(Component::Dram),
            b.constant()
        );
    }
    Ok(())
}
