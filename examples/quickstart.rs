//! Quickstart: build a DVFS-aware power model for a (simulated) GTX
//! Titan X and predict an unseen application's power across the whole
//! voltage-frequency grid from one profiling run.
//!
//! Run with: `cargo run --release --example quickstart`

use gpm::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. A simulated GPU. On real hardware this would be an NVML handle;
    //    here the card's physics are hidden behind the same interfaces
    //    (clock control, power sensor, event counters).
    let spec = gpm::spec::devices::gtx_titan_x();
    let mut gpu = SimulatedGpu::new(spec.clone(), 42);
    println!("Device: {}", gpu.spec());

    // 2. Run the paper's training campaign: the 83-microbenchmark suite,
    //    events at the reference configuration only, power at every V-F
    //    configuration (median of 10 runs).
    let suite = microbenchmark_suite(&spec);
    let mut profiler = Profiler::new(&mut gpu);
    let training = profiler.profile_suite(&suite)?;
    println!(
        "Training set: {} microbenchmarks x {} configurations = {} observations",
        training.samples.len(),
        training.configs().len(),
        training.observation_count()
    );
    println!(
        "Discovered L2 peak: {:.0} bytes/cycle (vendor does not disclose this)",
        training.l2_bytes_per_cycle
    );

    // 3. Fit the model with the paper's iterative heuristic.
    let (model, report) = Estimator::new().fit_with_report(&training)?;
    println!(
        "Fitted in {} iterations (training MAPE {:.1}%)",
        report.iterations, report.training_mape
    );

    // 4. Profile an unseen application ONCE, at the reference
    //    configuration, then predict its power everywhere.
    let app = validation_suite(&spec)
        .into_iter()
        .find(|k| k.name() == "HOTS")
        .expect("hotspot is in the validation suite");
    let profile = profiler.profile_at_reference(&app)?;
    println!("\n{} utilizations: {}", profile.name, profile.utilizations);

    println!("\nPredicted power across the grid (no further measurement!):");
    for mem in spec.mem_freqs() {
        print!("  fmem {:>5}:", mem.as_u32());
        for core in [595u32, 785, 975, 1164] {
            let config = FreqConfig::from_mhz(core, mem.as_u32());
            let p = model.predict(&profile.utilizations, config)?;
            print!("  {core} MHz -> {p:6.1} W");
        }
        println!();
    }

    // 5. Sanity check against the (normally unavailable) sensor.
    let check = FreqConfig::from_mhz(785, 810);
    let predicted = model.predict(&profile.utilizations, check)?;
    let measured = profiler.measure_power_at(&app, check)?;
    println!(
        "\nSpot check at {check}: predicted {predicted:.1} W, measured {measured:.1} W \
         ({:+.1}% error)",
        100.0 * (predicted - measured) / measured
    );
    Ok(())
}
