//! Serving round trip: publish a fitted model to a registry, load the
//! active version back, start the prediction server on a loopback port
//! and answer every request type over the wire protocol.
//!
//! Run with: `cargo run --release --example serve_roundtrip`

use gpm::dvfs::Objective;
use gpm::prelude::*;
use gpm::serve::{
    EngineConfig, ModelRegistry, PredictionEngine, Reply, Request, ServerConfig, ServerHandle,
    TcpClient,
};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. Fit a model the usual way (single-repeat campaign: this example
    //    is about serving, not measurement noise).
    let spec = gpm::spec::devices::gtx_titan_x();
    let mut gpu = SimulatedGpu::new(spec.clone(), 42);
    let training =
        Profiler::with_repeats(&mut gpu, 1).profile_suite(&microbenchmark_suite(&spec))?;
    let (model, report) = Estimator::new().fit_with_report(&training)?;
    println!(
        "Fitted {} in {} iterations (training MAPE {:.1}%)",
        spec.name(),
        report.iterations,
        report.training_mape
    );

    // 2. Publish it. The registry versions models as JSON on disk; the
    //    first publish of a name becomes the active version.
    let root = std::env::temp_dir().join("gpm-serve-example-registry");
    let _ = std::fs::remove_dir_all(&root); // keep reruns at v1
    let registry = ModelRegistry::open(&root)?;
    let version = registry.publish("titan", &model, Some(&report))?;
    let entry = registry.load_active()?;
    println!(
        "Published {} (device {}) to {}",
        entry.identity(),
        entry.device,
        root.display()
    );
    assert_eq!(version, entry.version);

    // 3. Serve it. Port 0 lets the OS pick; four requests is the budget,
    //    so the server drains and exits on its own.
    let identity = entry.identity();
    let engine = PredictionEngine::new(entry.model, &identity, &EngineConfig::default());
    let config = ServerConfig {
        max_requests: Some(4),
        ..ServerConfig::default()
    };
    let handle = ServerHandle::bind(engine, config, "127.0.0.1:0")?;
    let addr = handle.local_addr().expect("bound address");
    println!("Serving on {addr}\n");

    // 4. One round trip per request type, over TCP.
    let mut client = TcpClient::connect(addr)?;
    let requests = [
        Request::Power {
            utilizations: Utilizations::from_values([0.2, 0.6, 0.0, 0.1, 0.2, 0.3, 0.5])?,
            config: FreqConfig::from_mhz(975, 3505),
        },
        Request::Energy {
            kernel: "LBM".to_string(),
            config: FreqConfig::from_mhz(595, 810),
        },
        Request::BestConfig {
            kernel: "GEMM".to_string(),
            objective: Objective::MinEdp,
        },
        Request::Pareto {
            kernel: "SRAD_1".to_string(),
            max_points: 3,
        },
    ];
    for request in &requests {
        let reply = client.call(request)?;
        assert!(matches!(reply, Reply::Ok(_)), "{reply:?}");
        println!("-> {}", gpm::json::to_string(request)?);
        println!("<- {}\n", gpm::json::to_string(&reply)?);
    }

    // 5. The budget is spent: the server drains and the join returns.
    let (engine, stats) = handle.join();
    println!(
        "Server exited: {} served in {} batches, {} shed, cache {} hits / {} misses",
        stats.served,
        stats.batches,
        stats.shed,
        engine.stats().cache.hits,
        engine.stats().cache.misses
    );
    Ok(())
}
