//! Voltage-curve discovery: the model estimates how the (driver-hidden)
//! core voltage scales with frequency — the paper's Fig. 6 — including
//! the flat region, the linear region and the breaking point between
//! them, purely from power measurements.
//!
//! Run with: `cargo run --release --example voltage_discovery`

use gpm::prelude::*;
use gpm::spec::Domain;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    for spec in [
        gpm::spec::devices::gtx_titan_x(),
        gpm::spec::devices::titan_xp(),
    ] {
        let mut gpu = SimulatedGpu::new(spec.clone(), 42);
        let suite = microbenchmark_suite(&spec);
        let training = Profiler::new(&mut gpu).profile_suite(&suite)?;
        let model = Estimator::new().fit(&training)?;
        let reference = spec.default_config();

        println!(
            "\n{} — estimated core V/V_ref at fmem = {}:",
            spec.name(),
            reference.mem
        );
        let curve = model.voltage_table().core_curve(reference.mem);
        let vmax = curve.iter().map(|&(_, v)| v).fold(0.0f64, f64::max);
        for (f, v) in &curve {
            let width = ((v / vmax) * 40.0).round() as usize;
            println!("  {:>5} MHz  {:>5.3}  {}", f.as_u32(), v, "#".repeat(width));
        }

        // Locate the estimated breaking point: the first frequency where
        // the slope becomes clearly positive.
        let mut break_at = None;
        for w in curve.windows(2) {
            let slope = (w[1].1 - w[0].1) / f64::from(w[1].0.as_u32() - w[0].0.as_u32());
            if slope > 2.0e-4 {
                break_at = Some(w[0].0);
                break;
            }
        }
        match break_at {
            Some(f) => println!("  estimated breaking point near {f}"),
            None => println!("  no breaking point detected (flat curve)"),
        }

        // The memory domain: the paper observed no voltage changes across
        // memory levels; the estimate stays near 1.
        print!("  memory-domain V/V_ref by level:");
        for mem in spec.mem_freqs() {
            let v = model
                .voltage_table()
                .voltage(Domain::Memory, FreqConfig::new(reference.core, *mem))?;
            print!("  {}:{v:.2}", mem.as_u32());
        }
        println!();
    }
    Ok(())
}
