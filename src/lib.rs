//! # gpm — DVFS-aware GPU power modeling
//!
//! Facade crate re-exporting the whole workspace: a from-scratch Rust
//! reproduction of Guerreiro et al., *GPGPU Power Modeling for Multi-Domain
//! Voltage-Frequency Scaling* (HPCA 2018).
//!
//! The paper predicts GPU power consumption across the full core/memory
//! voltage-frequency grid from performance events gathered at a *single*
//! reference configuration, while jointly estimating the (driver-hidden)
//! voltage curve of each domain. Since no NVIDIA hardware is available in
//! this environment, the hardware substrate (power sensor, CUPTI event
//! counters, clock control) is a calibrated simulator ([`sim`]) with hidden
//! ground-truth physics; the model itself ([`core`]) only ever sees what
//! the paper's tool saw.
//!
//! Module map:
//! - [`spec`] — device specifications (paper Table II) and event tables (Table I)
//! - [`linalg`] — dense least squares, NNLS, isotonic regression, statistics
//! - [`sim`] — the simulated GPU: roofline performance model, hidden
//!   voltage/power physics, NVML-like sensor, CUPTI-like counters
//! - [`workloads`] — the 83-microbenchmark training suite and the 26
//!   validation applications (Table III)
//! - [`profiler`] — measurement orchestration over V-F grids
//! - [`core`] — the DVFS-aware power model: utilizations (Eqs. 8-10), the
//!   iterative estimator (Section III-D), prediction and per-component
//!   power breakdown, plus baseline models for comparison
//! - [`dvfs`] — an online DVFS governor on top of the fitted model (the
//!   paper's future-work direction)
//! - [`obs`] — structured observability: metrics registry, hierarchical
//!   tracing spans, and golden-trace conformance tooling
//! - [`faults`] — deterministic, seed-driven fault injection between the
//!   simulator and the profiler, exercising the resilient campaign path
//!   ([`profiler::ResilientProfiler`]) and the robust estimator mode
//! - [`serve`] — a batched, backpressured prediction service over a
//!   persistent, versioned model registry
//! - [`fleet`] — datacenter-scale fleet simulation: thousands of modeled
//!   nodes under a power-capped, deadline-aware cluster governor
//!
//! # Quickstart
//!
//! ```
//! use gpm::prelude::*;
//!
//! // A simulated GTX Titan X with the paper's measurement protocol.
//! let mut gpu = SimulatedGpu::new(gpm::spec::devices::gtx_titan_x(), 42);
//!
//! // Profile the microbenchmark training suite over the V-F grid
//! // (events only at the reference configuration, as in the paper).
//! let suite = microbenchmark_suite(gpu.spec());
//! let training = Profiler::new(&mut gpu).profile_suite(&suite)?;
//!
//! // Fit the DVFS-aware power model.
//! let model = Estimator::new().fit(&training)?;
//!
//! // Predict an unseen application's power anywhere on the grid.
//! let app = &validation_suite(gpu.spec())[0];
//! let profile = Profiler::new(&mut gpu).profile_at_reference(app)?;
//! let low_mem = FreqConfig::from_mhz(975, 810);
//! let p = model.predict(&profile.utilizations, low_mem)?;
//! assert!(p > 0.0 && p < gpu.spec().tdp_w());
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![forbid(unsafe_code)]

pub use gpm_core as core;
pub use gpm_dvfs as dvfs;
pub use gpm_faults as faults;
pub use gpm_fleet as fleet;
pub use gpm_json as json;
pub use gpm_linalg as linalg;
pub use gpm_obs as obs;
pub use gpm_par as par;
pub use gpm_profiler as profiler;
pub use gpm_serve as serve;
pub use gpm_sim as sim;
pub use gpm_spec as spec;
pub use gpm_workloads as workloads;

/// Convenience re-exports of the types used in almost every program.
pub mod prelude {
    pub use gpm_core::{
        Estimator, EstimatorConfig, PowerBreakdown, PowerModel, TrainingSet, Utilizations,
    };
    pub use gpm_faults::{FaultPlan, FaultyGpu};
    pub use gpm_profiler::{
        CampaignCheckpoint, CampaignOutcome, Profiler, ResilientProfiler, RetryPolicy,
    };
    pub use gpm_sim::{GpuDevice, SimulatedGpu};
    pub use gpm_spec::{Component, DeviceSpec, Domain, FreqConfig, Mhz};
    pub use gpm_workloads::{microbenchmark_suite, validation_suite, KernelDesc};
}
