//! Allocation-regression gate for the fit pipeline: once a
//! [`FitWorkspace`]'s buffers have grown to the problem size, the
//! estimator's alternation loop must perform **zero** heap allocations
//! per iteration.
//!
//! The proof is differential, with a counting global allocator: two
//! warm refits through the same sized workspace, identical except for
//! their iteration budget (5 vs. 15, with a negative tolerance so
//! convergence can never cut either short), must allocate *exactly* the
//! same number of times — so the 10 extra iterations allocated nothing.
//! Per-fit setup allocations (RMSE history, timing report, the model)
//! cancel in the difference.

use gpm::core::{Estimator, EstimatorConfig, FitWorkspace, MicrobenchSample, TrainingSet};
use gpm::prelude::Utilizations;
use gpm::spec::{devices, Component, FreqConfig};
use std::alloc::{GlobalAlloc, Layout, System};
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};

/// Counts heap allocations (not bytes); `realloc` counts too since a
/// growing buffer is exactly the regression this test exists to catch.
struct CountingAlloc;

static ALLOCS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.alloc(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.realloc(ptr, layout, new_size) }
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

/// Small exact-model training set (12 samples over the Titan X grid).
fn synthetic_training() -> TrainingSet {
    let spec = devices::gtx_titan_x();
    let reference = spec.default_config();
    let vbar = |c: FreqConfig| -> f64 {
        let v = |f: f64| {
            if f <= 810.0 {
                0.85
            } else {
                0.85 + 0.00075 * (f - 810.0)
            }
        };
        v(c.core.as_f64()) / v(reference.core.as_f64())
    };
    let mut samples = Vec::new();
    for i in 0..12 {
        let t = i as f64 / 11.0;
        let u = Utilizations::from_values([
            0.1 + 0.4 * t,
            0.5 * (1.0 - t),
            0.0,
            0.2 * t,
            0.3 * (1.0 - t),
            0.2 + 0.5 * t * (1.0 - t),
            (0.8 - 0.7 * t).max(0.05),
        ])
        .unwrap();
        let mut power_by_config = BTreeMap::new();
        for config in spec.vf_grid() {
            let vc = vbar(config);
            let fc = config.core.as_f64() / 1000.0;
            let fm = config.mem.as_f64() / 1000.0;
            let core_act = 20.0
                + 18.0 * u.get(Component::Int)
                + 24.0 * u.get(Component::Sp)
                + 15.0 * u.get(Component::SharedMem)
                + 17.0 * u.get(Component::L2Cache);
            let p = 15.0 * vc
                + vc * vc * fc * core_act
                + 10.0
                + fm * (11.0 + 26.0 * u.get(Component::Dram));
            power_by_config.insert(config, p);
        }
        samples.push(MicrobenchSample {
            name: format!("alloc_{i}"),
            utilizations: u,
            power_by_config,
        });
    }
    TrainingSet {
        device: spec,
        reference,
        l2_bytes_per_cycle: 640.0,
        samples,
    }
}

#[test]
fn steady_state_fit_iterations_allocate_nothing() {
    // One worker thread: the sequential gpm-par path routes all scratch
    // through the caller's workspace, which is the zero-allocation
    // contract under test (pooled workers own per-thread scratch).
    gpm::par::set_threads(Some(1));
    let training = synthetic_training();
    let seed_model = Estimator::with_config(EstimatorConfig {
        max_iterations: 8,
        ..EstimatorConfig::default()
    })
    .fit(&training)
    .expect("seed fit");

    let mut ws = FitWorkspace::new();
    let mut counted_refit = |max_iterations: usize| -> (u64, usize) {
        let estimator = Estimator::with_config(EstimatorConfig {
            max_iterations,
            // Never converge early: both runs must spend their full
            // budget or the difference would be vacuous.
            tolerance: -1.0,
            ..EstimatorConfig::default()
        });
        // Size the buffers for this exact shape, then count.
        estimator
            .fit_warm_with(&training, &seed_model, &mut ws)
            .expect("sizing refit");
        let before = ALLOCS.load(Ordering::Relaxed);
        let (_, report) = estimator
            .fit_warm_with(&training, &seed_model, &mut ws)
            .expect("counted refit");
        (ALLOCS.load(Ordering::Relaxed) - before, report.iterations)
    };

    let (allocs_short, iters_short) = counted_refit(5);
    let (allocs_long, iters_long) = counted_refit(15);
    gpm::par::set_threads(None);

    assert_eq!(
        (iters_short, iters_long),
        (5, 15),
        "the negative tolerance must force the full iteration budget"
    );
    assert_eq!(
        allocs_long,
        allocs_short,
        "{} heap allocations leaked into {} extra alternation iterations",
        allocs_long.saturating_sub(allocs_short),
        iters_long - iters_short
    );
}
