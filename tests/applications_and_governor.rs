//! Integration tests for the extensions: multi-kernel applications
//! (Section V-A weighting), the online DVFS governor (future work §VII),
//! power capping and the thermal model.

use gpm::dvfs::{baseline_ledger, Governor, Objective};
use gpm::prelude::*;
use gpm::sim::ThermalModel;
use gpm::spec::devices;
use gpm::workloads::{multi_kernel_suite, power_virus};

fn fitted() -> (SimulatedGpu, PowerModel) {
    let spec = devices::gtx_titan_x();
    let mut gpu = SimulatedGpu::new(spec.clone(), 31);
    let training = Profiler::with_repeats(&mut gpu, 1)
        .profile_suite(&microbenchmark_suite(&spec))
        .expect("campaign succeeds");
    let model = Estimator::new().fit(&training).expect("fit succeeds");
    (gpu, model)
}

#[test]
fn multi_kernel_application_power_is_predicted_end_to_end() {
    let (mut gpu, model) = fitted();
    let apps = multi_kernel_suite(gpu.spec());
    let mut profiler = Profiler::with_repeats(&mut gpu, 2);
    for app in &apps {
        let profile = profiler
            .profile_application(app)
            .expect("profiling succeeds");
        assert_eq!(profile.kernels.len(), app.kernels().len());
        let config = FreqConfig::from_mhz(785, 3505);
        let times = profiler
            .application_times(app, config)
            .expect("timing succeeds");
        let predicted = profile
            .predict_power(&model, config, Some(&times))
            .expect("prediction succeeds");
        let measured = profiler
            .measure_application_power(app, config)
            .expect("measurement succeeds");
        let err = (predicted - measured).abs() / measured;
        assert!(
            err < 0.20,
            "{}: {predicted:.1} vs {measured:.1} W",
            app.name()
        );
    }
}

#[test]
fn governor_full_run_improves_energy_and_respects_slowdown() {
    let (mut gpu, model) = fitted();
    let apps = validation_suite(gpu.spec());
    let stream: Vec<KernelDesc> = ["LBM", "GEMM", "HOTS", "LBM", "GEMM", "HOTS"]
        .iter()
        .map(|n| {
            apps.iter()
                .find(|k| k.name() == *n)
                .expect("app exists")
                .clone()
        })
        .collect();

    let baseline = baseline_ledger(&mut gpu, &model, &stream).expect("baseline runs");
    let mut governor = Governor::new(&mut gpu, model, Objective::MinEnergyWithSlowdown(1.15));
    for k in &stream {
        governor.run_kernel(k).expect("governed launch succeeds");
    }
    let governed = governor.ledger();
    assert!(governed.total_energy_j() <= baseline.total_energy_j() * 1.001);
    assert!(governed.total_time_s() <= baseline.total_time_s() * 1.15 + 1e-9);
    assert_eq!(governor.stats().profiled, 3);
    assert_eq!(governor.stats().cache_hits, 3);
}

#[test]
fn power_capping_and_model_tdp_fallback_agree_in_direction() {
    let (mut gpu, model) = fitted();
    let spec = gpu.spec().clone();
    let virus = power_virus(&spec);
    let top = spec.fastest_config();

    // The model predicts the virus near/above TDP at the top level and
    // steps down via predict_with_tdp.
    let profile = Profiler::with_repeats(&mut gpu, 1)
        .profile_at_reference(&virus)
        .expect("profiling succeeds");
    let (chosen, predicted) = model
        .predict_with_tdp(&profile.utilizations, top)
        .expect("tdp fallback succeeds");
    assert!(predicted <= spec.tdp_w());

    // The simulated hardware with capping enabled also steps down.
    gpu.set_power_capping(true);
    gpu.set_clocks(top).expect("clocks apply");
    let measurement = gpu.measure_power(&virus).expect("measurement succeeds");
    assert!(measurement.effective_clocks.core < top.core);
    assert!(measurement.watts <= spec.tdp_w() * 1.02);
    // Both mechanisms moved the same direction (down in core frequency).
    assert!(chosen.core <= top.core);
}

#[test]
fn thermal_model_keeps_validation_usable() {
    // With the thermal model active during validation, the (cold-trained)
    // model still predicts within a loose band — the drift is a static-
    // power effect of a few percent.
    let (_, model) = fitted();
    let spec = devices::gtx_titan_x();
    let mut gpu = SimulatedGpu::new(spec.clone(), 77);
    gpu.set_thermal_model(Some(ThermalModel::default()));
    let mut profiler = Profiler::with_repeats(&mut gpu, 2);
    let apps = validation_suite(&spec);
    let mut pred = Vec::new();
    let mut meas = Vec::new();
    for app in apps.iter().take(6) {
        let profile = profiler
            .profile_at_reference(app)
            .expect("profiling succeeds");
        for (config, watts) in profiler.measure_power_grid(app).expect("grid succeeds") {
            pred.push(
                model
                    .predict(&profile.utilizations, config)
                    .expect("prediction"),
            );
            meas.push(watts);
        }
    }
    let mape = gpm::linalg::stats::mape(&pred, &meas).expect("mape");
    assert!(mape < 15.0, "thermal-drift validation MAPE {mape:.1}%");
}

#[test]
fn prediction_intervals_cover_most_measurements() {
    let (mut gpu, model) = fitted();
    assert!(model.residual_sigma_w() > 0.0, "estimator attaches sigma");
    let spec = gpu.spec().clone();
    let mut profiler = Profiler::with_repeats(&mut gpu, 2);
    let apps = validation_suite(&spec);
    let mut covered = 0;
    let mut total = 0;
    for app in apps.iter().take(8) {
        let profile = profiler
            .profile_at_reference(app)
            .expect("profiling succeeds");
        for (config, watts) in profiler.measure_power_grid(app).expect("grid succeeds") {
            let (lo, _, hi) = model
                .predict_interval(&profile.utilizations, config)
                .expect("interval");
            if (lo..=hi).contains(&watts) {
                covered += 1;
            }
            total += 1;
        }
    }
    let coverage = covered as f64 / total as f64;
    // A ±2σ band should cover the bulk of held-out measurements.
    assert!(coverage > 0.60, "interval coverage {coverage:.2}");
}
