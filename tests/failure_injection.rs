//! Failure-injection tests: corrupted events, degenerate training sets,
//! invalid clocks and broken sensors must produce typed errors, never
//! panics or silent garbage.

use gpm::core::events::EventSet;
use gpm::core::{Estimator, MicrobenchSample, ModelError, TrainingSet, Utilizations};
use gpm::prelude::*;
use gpm::sim::{PowerSensor, SimError, SimRng};
use gpm::spec::{devices, EventId, Metric};

#[test]
fn missing_raw_events_are_reported_with_the_metric() {
    let spec = devices::gtx_titan_x();
    let mut gpu = SimulatedGpu::new(spec.clone(), 1);
    let suite = microbenchmark_suite(&spec);
    let mut record = gpu.collect_events(&suite[0]);
    record
        .counts
        .remove(&EventId::Named("fb_subp0_read_sectors"));
    let events = EventSet::new(record.config, record.counts);
    let err = Utilizations::from_events(&spec, &events, 640.0).unwrap_err();
    assert_eq!(err, ModelError::MissingEvents(Metric::DramReadSectors));
}

#[test]
fn zeroed_cycle_counter_is_rejected() {
    let spec = devices::gtx_titan_x();
    let mut gpu = SimulatedGpu::new(spec.clone(), 1);
    let suite = microbenchmark_suite(&spec);
    let mut record = gpu.collect_events(&suite[0]);
    record.counts.insert(EventId::Named("active_cycles"), 0);
    let events = EventSet::new(record.config, record.counts);
    let err = Utilizations::from_events(&spec, &events, 640.0).unwrap_err();
    assert_eq!(err, ModelError::ZeroActiveCycles);
}

#[test]
fn driver_rejects_unsupported_clocks_without_changing_state() {
    let spec = devices::tesla_k40c();
    let mut gpu = SimulatedGpu::new(spec.clone(), 1);
    let before = gpu.clocks();
    let err = gpu.set_clocks(FreqConfig::from_mhz(876, 3004)).unwrap_err();
    assert!(matches!(err, SimError::UnsupportedClocks(_)));
    assert_eq!(gpu.clocks(), before);
}

#[test]
fn broken_sensor_reports_window_too_short() {
    // A refresh period longer than the window yields zero samples.
    let sensor = PowerSensor::new(5_000.0, 0.0);
    let mut rng = SimRng::seed_from_u64(0);
    let err = sensor.sample_window(&mut rng, 100.0, 1.0).unwrap_err();
    assert!(matches!(err, SimError::WindowTooShort { .. }));
}

/// A degenerate training set: every kernel has identical utilizations, so
/// per-component coefficients are unidentifiable.
fn degenerate_training(spec: &DeviceSpec) -> TrainingSet {
    let u = Utilizations::from_values([0.4; 7]).unwrap();
    let samples = (0..12)
        .map(|i| MicrobenchSample {
            name: format!("same_{i}"),
            utilizations: u,
            power_by_config: spec
                .vf_grid()
                .into_iter()
                .map(|c| (c, 100.0 + c.core.as_f64() / 20.0))
                .collect(),
        })
        .collect();
    TrainingSet {
        device: spec.clone(),
        reference: spec.default_config(),
        l2_bytes_per_cycle: 640.0,
        samples,
    }
}

#[test]
fn degenerate_training_sets_do_not_panic() {
    // Identical utilizations make individual omegas unidentifiable; the
    // estimator must either fit a (non-unique) solution or return a typed
    // error — never panic.
    let spec = devices::gtx_titan_x();
    let training = degenerate_training(&spec);
    match Estimator::new().fit(&training) {
        Ok(model) => {
            // Whatever split was chosen, total predictions must track the
            // (perfectly linear) training power.
            let u = Utilizations::from_values([0.4; 7]).unwrap();
            let p = model.predict(&u, spec.default_config()).unwrap();
            assert!((p - (100.0 + 975.0 / 20.0)).abs() < 5.0, "{p}");
        }
        Err(e) => assert!(matches!(
            e,
            ModelError::Numerical(_) | ModelError::InsufficientTraining(_)
        )),
    }
}

#[test]
fn empty_and_underdetermined_training_sets_error_cleanly() {
    let spec = devices::gtx_titan_x();
    let mut t = degenerate_training(&spec);
    t.samples.clear();
    assert!(matches!(
        Estimator::new().fit(&t),
        Err(ModelError::InsufficientTraining(_))
    ));

    let mut t = degenerate_training(&spec);
    t.samples.truncate(2);
    for s in &mut t.samples {
        let p = s.power_by_config[&spec.default_config()];
        s.power_by_config.clear();
        s.power_by_config.insert(spec.default_config(), p);
    }
    assert!(matches!(
        Estimator::new().fit(&t),
        Err(ModelError::InsufficientTraining(_))
    ));
}

#[test]
fn prediction_outside_the_fitted_grid_is_a_typed_error() {
    let spec = devices::tesla_k40c();
    let mut gpu = SimulatedGpu::new(spec.clone(), 3);
    let suite = microbenchmark_suite(&spec);
    let training = Profiler::with_repeats(&mut gpu, 1)
        .profile_suite(&suite)
        .unwrap();
    let model = Estimator::new().fit(&training).unwrap();
    let u = Utilizations::from_values([0.1; 7]).unwrap();
    let err = model
        .predict(&u, FreqConfig::from_mhz(1000, 9999))
        .unwrap_err();
    assert!(matches!(err, ModelError::UnknownConfig(_)));
}

#[test]
fn corrupted_training_json_is_rejected() {
    assert!(TrainingSet::from_json("{\"oops\": 1}").is_err());
    assert!(gpm::core::PowerModel::from_json("[]").is_err());
}
