//! End-to-end fault-recovery acceptance tests: the resilient campaign
//! plus the robust estimator must produce a usable model from a faulty
//! device, degrade gracefully when a counter is permanently missing, and
//! resume interrupted campaigns byte-identically.

use gpm::core::{EstimatorConfig, TrainingSet};
use gpm::prelude::*;
use gpm::spec::{devices, Metric};

/// Root-mean-square prediction error of `model` against the power grid
/// of a (clean) training set.
fn rmse_against(model: &PowerModel, clean: &TrainingSet) -> f64 {
    let mut sse = 0.0;
    let mut n = 0usize;
    for sample in &clean.samples {
        for (&config, &watts) in &sample.power_by_config {
            let p = model.predict(&sample.utilizations, config).unwrap();
            sse += (p - watts) * (p - watts);
            n += 1;
        }
    }
    (sse / n as f64).sqrt()
}

fn faulty_campaign(
    plan: FaultPlan,
    seed: u64,
    repeats: u32,
) -> (TrainingSet, FaultyGpu<SimulatedGpu>) {
    let spec = devices::tesla_k40c();
    let suite = microbenchmark_suite(&spec);
    let gpu = SimulatedGpu::new(spec, seed);
    let mut device = FaultyGpu::new(gpu, plan);
    let training = {
        let mut profiler = ResilientProfiler::new(&mut device).with_repeats(repeats);
        let mut checkpoint = profiler.new_checkpoint();
        match profiler.run(&suite, &mut checkpoint, None).unwrap() {
            CampaignOutcome::Complete(t) => t,
            CampaignOutcome::Suspended { .. } => panic!("unbudgeted run must complete"),
        }
    };
    (training, device)
}

/// The headline acceptance criterion: with 10% transient counter
/// failures and 1% sensor spikes, `--robust` training still produces a
/// model whose error against the *clean* power grid stays within 2x the
/// clean-run validation RMSE.
#[test]
fn robust_training_survives_transient_faults_and_spikes() {
    let spec = devices::tesla_k40c();
    let suite = microbenchmark_suite(&spec);

    // Clean baseline: same device seed, no faults.
    let mut clean_gpu = SimulatedGpu::new(spec.clone(), 42);
    let clean_training = Profiler::with_repeats(&mut clean_gpu, 4)
        .profile_suite(&suite)
        .unwrap();
    let clean_model = Estimator::new().fit(&clean_training).unwrap();
    let clean_rmse = rmse_against(&clean_model, &clean_training);

    // Faulty campaign over the same device.
    let plan = FaultPlan {
        seed: 11,
        transient_counter_failure: 0.10,
        sensor_spike: 0.01,
        spike_magnitude: 4.0,
        ..FaultPlan::default()
    };
    let (faulty_training, device) = faulty_campaign(plan, 42, 4);
    assert!(
        device.stats().counter_failures > 0 && device.stats().spikes > 0,
        "plan must actually fire: {:?}",
        device.stats()
    );

    let (robust_model, report) = Estimator::with_config(EstimatorConfig {
        robust: true,
        ..EstimatorConfig::default()
    })
    .fit_with_report(&faulty_training)
    .unwrap();
    assert!(report.robust);

    let robust_rmse = rmse_against(&robust_model, &clean_training);
    let bound = (2.0 * clean_rmse).max(1.0);
    assert!(
        robust_rmse <= bound,
        "robust RMSE {robust_rmse:.3} W vs clean grid exceeds bound {bound:.3} W \
         (clean fit: {clean_rmse:.3} W)"
    );
}

/// Permanently missing DRAM sector counters must not abort the campaign:
/// the affected utilization column is zero-filled, the degradation is
/// recorded in the checkpoint, and robust training pins the matching
/// omega at zero instead of fitting garbage.
#[test]
fn missing_dram_counters_degrade_gracefully_end_to_end() {
    let spec = devices::tesla_k40c();
    let suite = microbenchmark_suite(&spec);
    let plan = FaultPlan {
        seed: 2,
        missing_metrics: vec![Metric::DramReadSectors, Metric::DramWriteSectors],
        ..FaultPlan::default()
    };
    let gpu = SimulatedGpu::new(spec, 7);
    let mut device = FaultyGpu::new(gpu, plan);
    let mut profiler = ResilientProfiler::new(&mut device).with_repeats(2);
    let mut checkpoint = profiler.new_checkpoint();
    let training = match profiler.run(&suite, &mut checkpoint, None).unwrap() {
        CampaignOutcome::Complete(t) => t,
        CampaignOutcome::Suspended { .. } => panic!("unbudgeted run must complete"),
    };
    assert_eq!(checkpoint.degraded, vec![Component::Dram]);
    for sample in &training.samples {
        assert_eq!(sample.utilizations.get(Component::Dram), 0.0);
    }

    let (model, report) = Estimator::with_config(EstimatorConfig {
        robust: true,
        ..EstimatorConfig::default()
    })
    .fit_with_report(&training)
    .unwrap();
    assert_eq!(report.degraded_components, vec![Component::Dram]);
    assert_eq!(model.mem_params().omegas[0], 0.0);
    // The degraded model still predicts physical power.
    let p = model
        .predict(&training.samples[0].utilizations, training.reference)
        .unwrap();
    assert!(p > 0.0 && p < model.spec().tdp_w() * 2.0, "{p} W");
}

/// Checkpoint/resume acceptance: interrupting a faulty campaign after an
/// arbitrary cell budget and resuming from the serialized checkpoint
/// yields a training set byte-identical to the uninterrupted run.
#[test]
fn interrupted_faulty_campaign_resumes_byte_identically() {
    let spec = devices::tesla_k40c();
    let suite: Vec<KernelDesc> = microbenchmark_suite(&spec)[..12].to_vec();
    let plan = FaultPlan::preset("sensor-spike", 3).unwrap();

    let run_full = || {
        let gpu = SimulatedGpu::new(spec.clone(), 9);
        let mut device = FaultyGpu::new(gpu, plan.clone());
        let mut profiler = ResilientProfiler::new(&mut device).with_repeats(2);
        let mut checkpoint = profiler.new_checkpoint();
        match profiler.run(&suite, &mut checkpoint, None).unwrap() {
            CampaignOutcome::Complete(t) => t.to_json().unwrap(),
            CampaignOutcome::Suspended { .. } => panic!("unbudgeted run must complete"),
        }
    };
    let straight = run_full();

    // Interrupt after 17 of 48 cells, serialize, resume in a fresh
    // process-equivalent (new device, new profiler, checkpoint from JSON).
    let gpu = SimulatedGpu::new(spec.clone(), 9);
    let mut device = FaultyGpu::new(gpu, plan.clone());
    let mut profiler = ResilientProfiler::new(&mut device).with_repeats(2);
    let mut checkpoint = profiler.new_checkpoint();
    match profiler.run(&suite, &mut checkpoint, Some(17)).unwrap() {
        CampaignOutcome::Suspended {
            completed_cells,
            total_cells,
        } => {
            assert_eq!(completed_cells, 17);
            assert_eq!(total_cells, 48);
        }
        CampaignOutcome::Complete(_) => panic!("budget of 17 must suspend"),
    }
    let serialized = checkpoint.to_json_string();

    let gpu = SimulatedGpu::new(spec.clone(), 9);
    let mut device = FaultyGpu::new(gpu, plan.clone());
    let mut profiler = ResilientProfiler::new(&mut device).with_repeats(2);
    let mut resumed = CampaignCheckpoint::from_json_str(&serialized).unwrap();
    let resumed_json = match profiler.run(&suite, &mut resumed, None).unwrap() {
        CampaignOutcome::Complete(t) => t.to_json().unwrap(),
        CampaignOutcome::Suspended { .. } => panic!("resume must complete"),
    };
    assert_eq!(straight, resumed_json, "resume must be byte-identical");
}
