//! Workspace-reuse conformance: the `FitWorkspace` entry points
//! (`fit_with_workspace`, `fit_warm_with`) are a pure performance
//! feature — they must produce byte-identical `PowerModel` JSON and
//! identical diagnostics vs. the workspace-free entry points, for cold
//! fits, warm-refit chains (including a workspace adopted mid-stream),
//! robust/degraded fits, and at any gpm-par thread count.

use gpm::core::{
    Estimator, EstimatorConfig, FitWorkspace, MicrobenchSample, TrainingSet, Utilizations,
};
use gpm::spec::{devices, Component, FreqConfig};
use gpm_check::Gen;
use std::collections::BTreeMap;
use std::sync::Mutex;

/// Thread-count changes are process-global; tests that set them hold
/// this lock.
static THREADS_LOCK: Mutex<()> = Mutex::new(());

/// A randomized but physically valid training set: powers from an exact
/// Eq. 5-7 model with per-observation multiplicative ripple, and the
/// SFU column identically zero so robust fits auto-degrade it.
fn random_training(g: &mut Gen, n_samples: usize) -> TrainingSet {
    let spec = devices::gtx_titan_x();
    let reference = spec.default_config();
    let vbar = |c: FreqConfig| -> f64 {
        let v = |f: f64| {
            if f <= 810.0 {
                0.85
            } else {
                0.85 + 0.00075 * (f - 810.0)
            }
        };
        v(c.core.as_f64()) / v(reference.core.as_f64())
    };
    let mut samples = Vec::new();
    for i in 0..n_samples {
        let u = Utilizations::from_values([
            g.f64_in(0.05, 0.9),
            g.f64_in(0.0, 0.8),
            0.0,
            g.f64_in(0.0, 0.5),
            g.f64_in(0.0, 0.6),
            g.f64_in(0.1, 0.9),
            g.f64_in(0.05, 0.9),
        ])
        .unwrap();
        let mut power_by_config = BTreeMap::new();
        for config in spec.vf_grid() {
            let vc = vbar(config);
            let fc = config.core.as_f64() / 1000.0;
            let fm = config.mem.as_f64() / 1000.0;
            let core_act = 20.0
                + 18.0 * u.get(Component::Int)
                + 24.0 * u.get(Component::Sp)
                + 15.0 * u.get(Component::SharedMem)
                + 17.0 * u.get(Component::L2Cache);
            let p = (15.0 * vc
                + vc * vc * fc * core_act
                + 10.0
                + fm * (11.0 + 26.0 * u.get(Component::Dram)))
                * (1.0 + 0.01 * g.f64_in(-1.0, 1.0));
            power_by_config.insert(config, p);
        }
        samples.push(MicrobenchSample {
            name: format!("ws_{i}"),
            utilizations: u,
            power_by_config,
        });
    }
    TrainingSet {
        device: spec,
        reference,
        l2_bytes_per_cycle: 640.0,
        samples,
    }
}

/// A drifted re-measurement of the same suite: every power scaled by a
/// small random factor, as a recalibration campaign would see.
fn perturbed(g: &mut Gen, base: &TrainingSet) -> TrainingSet {
    let mut next = base.clone();
    for s in &mut next.samples {
        for w in s.power_by_config.values_mut() {
            *w *= 1.0 + 0.02 * g.f64_in(-1.0, 1.0);
        }
    }
    next
}

/// The property: for random training data, thread counts 1/4/8, robust
/// on/off and explicit column drops, the workspace path (cold fit, then
/// a warm refit through the same reused workspace, then a warm refit
/// through a workspace adopted mid-stream) is byte-identical to the
/// workspace-free path.
#[test]
fn workspace_paths_are_bit_identical_for_random_fits() {
    let _guard = THREADS_LOCK.lock().unwrap();
    for case in 0..6u32 {
        gpm_check::check_case("workspace_paths_are_bit_identical", case, |g| {
            gpm::par::set_threads(Some([1usize, 4, 8][case as usize % 3]));
            let config = EstimatorConfig {
                max_iterations: 8,
                robust: case % 2 == 1,
                drop_components: if case % 3 == 2 {
                    vec![Component::SharedMem]
                } else {
                    Vec::new()
                },
                ..EstimatorConfig::default()
            };
            let estimator = Estimator::with_config(config);
            let t0 = random_training(g, 8 + 2 * (case as usize % 3));
            let t1 = perturbed(g, &t0);

            // Path A: workspace-free cold fit + warm refit.
            let (m0, r0) = estimator.fit_with_report(&t0).unwrap();
            let (m1, r1) = estimator.fit_warm(&t1, &m0).unwrap();

            // Path B: one workspace reused across the whole chain.
            let mut ws = FitWorkspace::new();
            let (m0b, r0b) = estimator.fit_with_workspace(&t0, &mut ws).unwrap();
            let (m1b, r1b) = estimator.fit_warm_with(&t1, &m0b, &mut ws).unwrap();
            assert_eq!(m0.to_json().unwrap(), m0b.to_json().unwrap());
            assert_eq!(m1.to_json().unwrap(), m1b.to_json().unwrap());
            assert_eq!(r0.rmse_history, r0b.rmse_history);
            assert_eq!(r1.rmse_history, r1b.rmse_history);
            assert_eq!(r0.coefficient_sigma, r0b.coefficient_sigma);
            assert_eq!(r0.degraded_components, r0b.degraded_components);
            assert_eq!(r1.robust_reweights, r1b.robust_reweights);

            // Path C: a fresh workspace adopted mid-stream must join the
            // chain without disturbing it.
            let mut late_ws = FitWorkspace::new();
            let (m1c, _) = estimator.fit_warm_with(&t1, &m0, &mut late_ws).unwrap();
            assert_eq!(m1.to_json().unwrap(), m1c.to_json().unwrap());
        });
    }
    gpm::par::set_threads(None);
}

/// Cross-thread invariance through the workspace entry points on one
/// fixed dataset: 4- and 8-thread fits must match the 1-thread fit
/// byte-for-byte, with the workspace reused across thread-count changes.
#[test]
fn workspace_fits_are_thread_count_independent() {
    let _guard = THREADS_LOCK.lock().unwrap();
    let mut g = Gen::new(7);
    let training = random_training(&mut g, 10);
    let estimator = Estimator::with_config(EstimatorConfig {
        max_iterations: 8,
        ..EstimatorConfig::default()
    });

    gpm::par::set_threads(Some(1));
    let mut ws = FitWorkspace::new();
    let (model_seq, _) = estimator.fit_with_workspace(&training, &mut ws).unwrap();
    let (warm_seq, _) = estimator
        .fit_warm_with(&training, &model_seq, &mut ws)
        .unwrap();
    let seq_json = model_seq.to_json().unwrap();
    let warm_json = warm_seq.to_json().unwrap();

    for threads in [4usize, 8] {
        gpm::par::set_threads(Some(threads));
        let (model, _) = estimator.fit_with_workspace(&training, &mut ws).unwrap();
        assert_eq!(
            model.to_json().unwrap(),
            seq_json,
            "workspace fit diverged at {threads} threads"
        );
        let (warm, _) = estimator.fit_warm_with(&training, &model, &mut ws).unwrap();
        assert_eq!(
            warm.to_json().unwrap(),
            warm_json,
            "warm workspace refit diverged at {threads} threads"
        );
    }
    gpm::par::set_threads(None);
}
