//! Fleet-simulation integration and property tests: the cluster
//! governor's cap and monotonicity contracts on arbitrary ladders, and
//! end-to-end campaign determinism through the facade.

use gpm::dvfs::VfCandidate;
use gpm::fleet::{assign, oracle_assign, FleetConfig, FleetSim, Ladder};
use gpm::spec::FreqConfig;

/// Draws a random but physically-plausible candidate grid: power and
/// runtime both monotone in the core clock, with noise. Ladders built
/// from it satisfy the governor's invariants by construction of
/// `Ladder::build`, whatever the noise does.
fn random_ladder(g: &mut gpm_check::Gen) -> Ladder {
    let levels = g.usize_in(2..24);
    let top_power = g.f64_in(60.0, 800.0);
    let top_time = g.f64_in(0.05, 4.0);
    let candidates: Vec<VfCandidate> = (0..levels)
        .map(|i| {
            let frac = i as f64 / levels as f64;
            VfCandidate {
                config: FreqConfig::from_mhz(1500 - 50 * i as u32, 3505),
                power_w: top_power * (1.0 - 0.8 * frac) * g.f64_in(0.95, 1.05),
                time_s: top_time * (1.0 + 1.5 * frac) * g.f64_in(0.95, 1.05),
            }
        })
        .collect();
    let slack = g.f64_in(1.0, 2.0);
    Ladder::build(&candidates, top_time, top_time * slack)
}

/// The cap solver never exceeds a non-negative cap, for any fleet of
/// ladders built from finite candidate grids.
#[test]
fn cluster_governor_never_exceeds_the_cap() {
    gpm_check::check("cluster_governor_never_exceeds_the_cap", |g| {
        let ladders: Vec<Ladder> = (0..g.usize_in(1..12)).map(|_| random_ladder(g)).collect();
        let refs: Vec<&Ladder> = ladders.iter().collect();
        let uncapped = assign(&refs, None).power_w;
        let cap = if uncapped > 0.0 {
            g.f64_in(0.0, uncapped * 1.2)
        } else {
            0.0
        };
        let a = assign(&refs, Some(cap));
        assert!(
            a.power_w <= cap + 1e-9,
            "cap {cap:.1} W violated: {:.1} W",
            a.power_w
        );
        assert!(a.power_w.is_finite() && a.energy_j.is_finite());
    });
}

/// Relaxing the cap is monotone: more headroom never costs energy, for
/// caps above the fleet's no-shed floor (the Off rung destroys work, so
/// energy comparisons only make sense while every job still runs).
#[test]
fn relaxing_the_cap_never_increases_energy() {
    gpm_check::check("relaxing_the_cap_never_increases_energy", |g| {
        let ladders: Vec<Ladder> = (0..g.usize_in(1..10)).map(|_| random_ladder(g)).collect();
        let refs: Vec<&Ladder> = ladders.iter().collect();
        let floor: f64 = refs.iter().map(|l| l.lowest_live().power_w).sum();
        let ceil = assign(&refs, None).power_w;
        let draw = |g: &mut gpm_check::Gen| {
            if ceil > floor {
                g.f64_in(floor, ceil)
            } else {
                floor
            }
        };
        let mut tight = draw(g);
        let mut loose = draw(g);
        if tight > loose {
            std::mem::swap(&mut tight, &mut loose);
        }
        let a_tight = assign(&refs, Some(tight));
        let a_loose = assign(&refs, Some(loose));
        assert_eq!(
            a_tight.shed, 0,
            "cap at or above the live floor must not shed"
        );
        assert_eq!(a_loose.shed, 0);
        assert!(
            a_loose.energy_j <= a_tight.energy_j + 1e-9,
            "cap {tight:.1} -> {loose:.1} W raised energy {:.1} -> {:.1} J",
            a_tight.energy_j,
            a_loose.energy_j
        );
    });
}

/// Greedy waterfilling tracks the exhaustive oracle in the no-shed
/// regime on small random fleets.
#[test]
fn greedy_waterfilling_tracks_the_oracle() {
    gpm_check::check("greedy_waterfilling_tracks_the_oracle", |g| {
        let ladders: Vec<Ladder> = (0..g.usize_in(1..4)).map(|_| random_ladder(g)).collect();
        if ladders.iter().map(|l| l.rungs.len()).product::<usize>() > 50_000 {
            return; // keep the oracle enumeration cheap
        }
        let refs: Vec<&Ladder> = ladders.iter().collect();
        let floor: f64 = refs.iter().map(|l| l.lowest_live().power_w).sum();
        let ceil = assign(&refs, None).power_w;
        let cap = if ceil > floor {
            g.f64_in(floor, ceil)
        } else {
            floor
        };
        let greedy = assign(&refs, Some(cap));
        let oracle = oracle_assign(&refs, cap);
        assert_eq!(greedy.shed, 0);
        assert_eq!(oracle.shed, 0);
        // The oracle is exhaustive, so it can never lose to the greedy —
        // this direction is exact and doubles as an oracle self-check.
        assert!(
            oracle.energy_j <= greedy.energy_j + 1e-9,
            "oracle {:.1} J lost to greedy {:.1} J",
            oracle.energy_j,
            greedy.energy_j
        );
        // Greedy has no constant-factor guarantee on arbitrary noisy
        // ladders; empirically it stays well inside 25% on this family.
        assert!(
            greedy.energy_j <= oracle.energy_j * 1.25 + 1e-9,
            "greedy {:.1} J strayed from oracle {:.1} J at cap {cap:.1} W",
            greedy.energy_j,
            oracle.energy_j
        );
    });
}

/// End-to-end: a small mixed fleet (paper GPU + datacenter class)
/// through the facade — deterministic across thread counts with faults
/// injected, cap respected, governed energy at or under the baseline.
#[test]
fn fleet_campaign_end_to_end() {
    let config = FleetConfig {
        nodes: 10,
        epochs: 6,
        seed: 7,
        classes: vec!["tesla-k40c".into(), "a100m".into()],
        distinct: 2,
        launches: 5,
        fail_rate: 0.3,
        degraded_rate: 0.3,
        fault_preset: "transient".into(),
        ..FleetConfig::default()
    };

    gpm::par::set_threads(Some(1));
    let sequential = FleetSim::prepare(&config).unwrap().campaign(None);
    gpm::par::set_threads(Some(4));
    let parallel = FleetSim::prepare(&config).unwrap().campaign(None);
    gpm::par::set_threads(None);

    assert_eq!(
        gpm::json::to_string(&sequential).unwrap(),
        gpm::json::to_string(&parallel).unwrap(),
        "fleet trace must be byte-identical across thread counts"
    );

    assert_eq!(sequential.epochs.len(), 6);
    assert!(sequential.cap_respected());
    assert!(sequential.energy_j > 0.0);
    assert!(sequential.energy_j <= sequential.baseline_energy_j);
    assert!(sequential.work > 0);

    // A cap at 80% of the observed peak binds, is respected, and costs
    // energy unless it sheds jobs.
    let sim = FleetSim::prepare(&config).unwrap();
    let capped = sim.campaign(Some(sequential.peak_power_w * 0.8));
    assert!(capped.cap_respected());
    assert!(capped.epochs.iter().any(|e| e.governor_steps > 0));
    if capped.shed == 0 {
        assert!(capped.energy_j >= sequential.energy_j - 1e-9);
    }
}

/// The JSON trace round-trips losslessly, digest included.
#[test]
fn fleet_trace_round_trips_through_json() {
    use gpm::json::FromJson;
    let config = FleetConfig {
        nodes: 4,
        epochs: 3,
        classes: vec!["tesla-k40c".into()],
        distinct: 2,
        launches: 4,
        ..FleetConfig::default()
    };
    let trace = FleetSim::prepare(&config).unwrap().campaign(Some(500.0));
    let text = gpm::json::to_string(&trace).unwrap();
    let back = gpm::fleet::FleetTrace::from_json(&gpm::json::parse(&text).unwrap()).unwrap();
    assert_eq!(back, trace);
    assert_eq!(back.digest, trace.digest);
}
