//! Deterministic integration test for governor observability: under a
//! fixed-seed simulated device (whose power sensor is noisy by
//! construction), every `run_kernel` call emits exactly one decision
//! span whose attributes agree with the energy ledger and the
//! governor's own counters.

use gpm::core::Estimator;
use gpm::dvfs::{Governor, Objective};
use gpm::obs::{AttrValue, Recorder};
use gpm::prelude::*;

fn attr_num(span: &gpm::obs::SpanRecord, key: &str) -> f64 {
    match span.attrs.get(key) {
        Some(AttrValue::Num(n)) => *n,
        other => panic!(
            "span `{}` attr `{key}` is {other:?}, expected a number",
            span.name
        ),
    }
}

fn attr_str<'a>(span: &'a gpm::obs::SpanRecord, key: &str) -> &'a str {
    match span.attrs.get(key) {
        Some(AttrValue::Str(s)) => s,
        other => panic!(
            "span `{}` attr `{key}` is {other:?}, expected a string",
            span.name
        ),
    }
}

#[test]
fn governor_emits_one_decision_span_per_launch_matching_the_ledger() {
    let spec = gpm::spec::devices::gtx_titan_x();
    let mut gpu = SimulatedGpu::new(spec.clone(), 17);
    let training = Profiler::with_repeats(&mut gpu, 1)
        .profile_suite(&microbenchmark_suite(&spec))
        .expect("campaign succeeds");
    let model = Estimator::new().fit(&training).expect("fit succeeds");

    // Recorder installed only around the governed launches, so the
    // trace contains exactly the governor's activity.
    let recorder = Recorder::new();
    assert!(gpm::obs::install(&recorder).is_none());

    let apps = validation_suite(&spec);
    let lbm = apps.iter().find(|k| k.name() == "LBM").unwrap();
    let gemm = apps.iter().find(|k| k.name() == "GEMM").unwrap();
    let launches = [lbm, gemm, lbm, lbm, gemm, lbm];

    let mut governor = Governor::new(&mut gpu, model, Objective::MinEnergy);
    governor.set_reprofile_interval(Some(2));
    let mut runs = Vec::new();
    for kernel in launches {
        runs.push(governor.run_kernel(kernel).expect("governed launch"));
    }
    let stats = governor.stats();
    let ledger_total_j = governor.ledger().total_energy_j();
    let ledger_len = governor.ledger().len();
    drop(governor);

    gpm::obs::uninstall();
    let trace = recorder.snapshot();

    // Exactly one decision span per launch, order keys 0..n in launch
    // order, kernel names matching the launch sequence.
    let mut spans = trace.spans_named("governor.kernel");
    assert_eq!(spans.len(), launches.len());
    spans.sort_by_key(|s| s.order);
    for (i, (span, kernel)) in spans.iter().zip(launches).enumerate() {
        assert_eq!(span.order, i as u64);
        assert_eq!(attr_str(span, "kernel"), kernel.name());
    }

    // Ledger length equals the governor's own totals, and the summed
    // per-span energy attribute reproduces the ledger's total.
    assert_eq!(ledger_len, (stats.profiled + stats.cache_hits) as usize);
    assert_eq!(ledger_len, launches.len());
    let span_energy_j: f64 = spans.iter().map(|s| attr_num(s, "energy_j")).sum();
    assert!(
        (span_energy_j - ledger_total_j).abs() <= 1e-9 * ledger_total_j.max(1.0),
        "span energy {span_energy_j} J vs ledger {ledger_total_j} J"
    );

    // Span origins agree with the returned runs, and the reprofile
    // interval of 2 shows up both in the stats and the span attrs.
    let origins: Vec<&str> = spans.iter().map(|s| attr_str(s, "origin")).collect();
    let expected: Vec<&str> = runs
        .iter()
        .map(|r| match r.origin {
            gpm::dvfs::DecisionOrigin::Profiled => "profiled",
            gpm::dvfs::DecisionOrigin::Cached => "cached",
        })
        .collect();
    assert_eq!(origins, expected);
    let reprofiled = spans
        .iter()
        .filter(|s| s.attrs.get("reprofile") == Some(&AttrValue::Bool(true)))
        .count();
    assert_eq!(reprofiled as u32, stats.reprofiles);
    assert!(
        stats.reprofiles > 0,
        "interval 2 over 6 launches must reprofile"
    );

    // Predicted vs sensed: every decision span carries both sides.
    for span in &spans {
        assert!(attr_num(span, "predicted_power_w") > 0.0);
        assert!(attr_num(span, "exec_time_s") > 0.0);
        assert!(attr_num(span, "reference_time_s") > 0.0);
    }

    // Counters agree with GovernorStats.
    let counters = &trace.metrics.counters;
    assert_eq!(
        counters.get("governor.launches"),
        Some(&(launches.len() as u64))
    );
    assert_eq!(
        counters.get("governor.profiled"),
        Some(&u64::from(stats.profiled))
    );
    assert_eq!(
        counters.get("governor.cache_hits"),
        Some(&u64::from(stats.cache_hits))
    );
    assert_eq!(
        counters.get("governor.reprofiles"),
        Some(&u64::from(stats.reprofiles))
    );
}
