//! End-to-end reproduction tests: the full paper pipeline on every
//! device, asserting the headline accuracy bands hold.

use gpm::core::baseline::{BaselineFitStrategy, LinearFreqModel};
use gpm::linalg::stats;
use gpm::prelude::*;
use gpm::spec::devices;

/// Runs the full pipeline with reduced measurement repeats (keeps CI
/// fast; the reproduction binaries use the paper's 10).
fn run_pipeline(spec: &DeviceSpec, seed: u64) -> (SimulatedGpu, TrainingSet, PowerModel) {
    let mut gpu = SimulatedGpu::new(spec.clone(), seed);
    let suite = microbenchmark_suite(spec);
    let training = Profiler::with_repeats(&mut gpu, 2)
        .profile_suite(&suite)
        .expect("campaign succeeds");
    let model = Estimator::new()
        .fit(&training)
        .expect("estimation succeeds");
    (gpu, training, model)
}

/// Validation MAPE over a subset of the unseen applications and the full
/// V-F grid.
fn validation_mape(spec: &DeviceSpec, model: &PowerModel, napps: usize) -> f64 {
    let mut gpu = SimulatedGpu::new(spec.clone(), 12345);
    let mut profiler = Profiler::with_repeats(&mut gpu, 2);
    let mut pred = Vec::new();
    let mut meas = Vec::new();
    for app in validation_suite(spec).iter().take(napps) {
        let profile = profiler
            .profile_at_reference(app)
            .expect("profiling succeeds");
        for (config, watts) in profiler.measure_power_grid(app).expect("grid succeeds") {
            pred.push(
                model
                    .predict(&profile.utilizations, config)
                    .expect("prediction"),
            );
            meas.push(watts);
        }
    }
    stats::mape(&pred, &meas).expect("mape")
}

#[test]
fn gtx_titan_x_reproduces_the_paper_band() {
    let spec = devices::gtx_titan_x();
    let (_, training, model) = run_pipeline(&spec, 42);
    assert_eq!(training.samples.len(), 83);
    assert_eq!(training.configs().len(), 64);
    let mape = validation_mape(&spec, &model, 10);
    // Paper: 6.0%. Band: comfortably under the linear-baseline regime.
    assert!(mape < 10.0, "validation MAPE {mape:.1}% out of band");
}

#[test]
fn titan_xp_reproduces_the_paper_band() {
    let spec = devices::titan_xp();
    let (_, _, model) = run_pipeline(&spec, 42);
    let mape = validation_mape(&spec, &model, 8);
    assert!(mape < 10.0, "validation MAPE {mape:.1}% out of band");
}

#[test]
fn tesla_k40c_is_the_least_accurate_device() {
    // Paper: 12.4% on the K40c vs ~6-7% on the Titans, attributed to
    // unreliable undisclosed events. Shape check: K40c strictly worse
    // than the Titan X under identical protocols.
    let tx = devices::gtx_titan_x();
    let (_, _, tx_model) = run_pipeline(&tx, 42);
    let tx_mape = validation_mape(&tx, &tx_model, 12);

    let k40 = devices::tesla_k40c();
    let (_, _, k40_model) = run_pipeline(&k40, 42);
    let k40_mape = validation_mape(&k40, &k40_model, 12);

    assert!(
        k40_mape > tx_mape,
        "K40c ({k40_mape:.1}%) should be worse than Titan X ({tx_mape:.1}%)"
    );
    assert!(k40_mape < 25.0, "K40c MAPE {k40_mape:.1}% is out of band");
}

#[test]
fn model_beats_the_linear_frequency_baseline() {
    // The paper's central comparison (Section VI): voltage-aware beats
    // linear-in-frequency on devices with wide voltage ranges.
    let spec = devices::gtx_titan_x();
    let (_, training, model) = run_pipeline(&spec, 42);
    let baseline =
        LinearFreqModel::fit(&training, BaselineFitStrategy::Subset3x3).expect("baseline fits");

    let mut gpu = SimulatedGpu::new(spec.clone(), 999);
    let mut profiler = Profiler::with_repeats(&mut gpu, 2);
    let mut model_pred = Vec::new();
    let mut base_pred = Vec::new();
    let mut meas = Vec::new();
    for app in validation_suite(&spec).iter().take(10) {
        let profile = profiler.profile_at_reference(app).expect("profiling");
        for (config, watts) in profiler.measure_power_grid(app).expect("grid") {
            model_pred.push(
                model
                    .predict(&profile.utilizations, config)
                    .expect("prediction"),
            );
            base_pred.push(baseline.predict(&profile.utilizations, config));
            meas.push(watts);
        }
    }
    let model_mape = stats::mape(&model_pred, &meas).expect("mape");
    let base_mape = stats::mape(&base_pred, &meas).expect("mape");
    assert!(
        model_mape < base_mape,
        "model {model_mape:.1}% should beat baseline {base_mape:.1}%"
    );
}

#[test]
fn voltage_curve_recovery_matches_ground_truth_shape() {
    // Fig. 6: two regions, accurate recovery. Score against the hidden
    // truth the estimator never saw.
    let spec = devices::gtx_titan_x();
    let (gpu, _, model) = run_pipeline(&spec, 42);
    let reference = spec.default_config();
    let curve = model.voltage_table().core_curve(reference.mem);
    assert_eq!(curve.len(), spec.core_freqs().len());

    let mut errs = Vec::new();
    for (f, v) in &curve {
        let truth = gpu.truth().core_voltage.normalized_at(*f, reference.core);
        errs.push(((v - truth) / truth).abs());
        // Monotone non-decreasing (Eq. 12 constraint).
    }
    for w in curve.windows(2) {
        assert!(w[0].1 <= w[1].1 + 1e-9, "voltage curve must be monotone");
    }
    let mean_err = errs.iter().sum::<f64>() / errs.len() as f64;
    assert!(
        mean_err < 0.10,
        "mean voltage error {:.1}%",
        mean_err * 100.0
    );
    // Two-regime shape: top-of-range voltage clearly above the plateau.
    let plateau = curve[0].1;
    let top = curve.last().expect("non-empty").1;
    assert!(top > plateau * 1.1, "plateau {plateau:.3} -> top {top:.3}");
}

#[test]
fn error_grows_away_from_the_reference_memory_level() {
    // The Fig. 8 pattern: the 810 MHz panel is the worst on the Titan X.
    let spec = devices::gtx_titan_x();
    let (_, _, model) = run_pipeline(&spec, 42);
    let mut gpu = SimulatedGpu::new(spec.clone(), 777);
    let mut profiler = Profiler::with_repeats(&mut gpu, 2);

    let mut near_pred = Vec::new();
    let mut near_meas = Vec::new();
    let mut far_pred = Vec::new();
    let mut far_meas = Vec::new();
    for app in validation_suite(&spec).iter().take(10) {
        let profile = profiler.profile_at_reference(app).expect("profiling");
        for (config, watts) in profiler.measure_power_grid(app).expect("grid") {
            let p = model
                .predict(&profile.utilizations, config)
                .expect("prediction");
            if config.mem.as_u32() == 810 {
                far_pred.push(p);
                far_meas.push(watts);
            } else if config.mem.as_u32() == 3505 {
                near_pred.push(p);
                near_meas.push(watts);
            }
        }
    }
    let near = stats::mape(&near_pred, &near_meas).expect("mape");
    let far = stats::mape(&far_pred, &far_meas).expect("mape");
    assert!(
        far > near,
        "error at the far memory level ({far:.1}%) should exceed the reference level ({near:.1}%)"
    );
}
