//! Property-based tests over the public API: invariants that must hold
//! for arbitrary utilizations, configurations and model inputs — plus
//! the reproducibility contract that parallel estimation is bit-identical
//! across thread counts.

use gpm::core::{
    cross_validate, DomainParams, EstimatorConfig, MicrobenchSample, PowerModel, Utilizations,
    VoltageTable,
};
use gpm::prelude::*;
use gpm::spec::{devices, Domain};
use std::collections::BTreeMap;

/// The backoff schedule contract: for any policy and seed, the recorded
/// delays are non-decreasing, bounded by `max_backoff_ms * (1 + jitter)`,
/// have exactly `max_attempts - 1` entries, and are bit-identical when
/// recomputed from the same `(policy, seed)`.
#[test]
fn backoff_schedules_are_monotone_bounded_and_reproducible() {
    gpm_check::check(
        "backoff_schedules_are_monotone_bounded_and_reproducible",
        |g| {
            let policy = RetryPolicy {
                max_attempts: g.u64_in(1..16) as u32,
                base_backoff_ms: g.f64_in(0.1, 200.0),
                max_backoff_ms: g.f64_in(200.0, 5_000.0),
                jitter: g.f64_in(0.0, 1.0),
            };
            let seed = g.u64_any();
            let schedule = policy.backoff_schedule_ms(seed);
            assert_eq!(schedule.len(), policy.max_attempts as usize - 1);
            let cap = policy.max_backoff_ms * (1.0 + policy.jitter);
            let mut prev = 0.0;
            for &delay in &schedule {
                assert!(delay >= prev, "schedule must be non-decreasing");
                assert!(delay > 0.0 && delay <= cap, "{delay} ms over cap {cap} ms");
                prev = delay;
            }
            let again = policy.backoff_schedule_ms(seed);
            let bits = |v: &[f64]| v.iter().map(|d| d.to_bits()).collect::<Vec<_>>();
            assert_eq!(bits(&schedule), bits(&again), "must be bit-identical");
        },
    );
}

/// The resilient campaign's determinism contract extends to faults: the
/// quarantine ledger (and the whole checkpoint) is independent of the
/// gpm-par worker count.
#[test]
fn quarantine_ledger_is_thread_count_independent() {
    let spec = devices::tesla_k40c();
    let suite: Vec<KernelDesc> = microbenchmark_suite(&spec)[..8].to_vec();
    let plan = FaultPlan::preset("transient", 6).unwrap();

    let run = |threads: usize| {
        gpm::par::set_threads(Some(threads));
        let gpu = SimulatedGpu::new(spec.clone(), 3);
        let mut device = FaultyGpu::new(gpu, plan.clone());
        let mut profiler = ResilientProfiler::new(&mut device).with_repeats(2);
        let mut checkpoint = profiler.new_checkpoint();
        match profiler.run(&suite, &mut checkpoint, None).unwrap() {
            CampaignOutcome::Complete(_) => {}
            CampaignOutcome::Suspended { .. } => panic!("unbudgeted run must complete"),
        }
        (checkpoint.quarantined.len(), checkpoint.to_json_string())
    };

    let (count_1, json_1) = run(1);
    assert!(count_1 > 0, "transient preset must quarantine something");
    for threads in [4usize, 8] {
        let (count_n, json_n) = run(threads);
        assert_eq!(
            count_n, count_1,
            "quarantine count diverged at {threads} threads"
        );
        assert_eq!(json_n, json_1, "checkpoint diverged at {threads} threads");
    }
    gpm::par::set_threads(None);
}

/// A small but non-trivial fitted-model stand-in with hand-set physical
/// (non-negative) coefficients over the GTX Titan X grid.
fn toy_model() -> PowerModel {
    let spec = devices::gtx_titan_x();
    let reference = spec.default_config();
    // Normalized so the curve equals exactly 1 at the reference core
    // frequency (the table pins the reference to 1 regardless).
    let raw = |f: f64| 0.87 + 0.28 * (f - 595.0) / (1164.0 - 595.0);
    let at_ref = raw(reference.core.as_f64());
    let entries: Vec<_> = spec
        .vf_grid()
        .into_iter()
        .map(|c| (c, [raw(c.core.as_f64()) / at_ref, 1.0]))
        .collect();
    PowerModel::new(
        spec,
        DomainParams {
            static_coef: 15.0,
            idle_dyn: 20.0,
            omegas: vec![18.0, 24.0, 30.0, 22.0, 15.0, 17.0],
        },
        DomainParams {
            static_coef: 10.0,
            idle_dyn: 11.0,
            omegas: vec![26.0],
        },
        VoltageTable::new(reference, entries),
        640.0,
    )
}

fn draw_utilizations(g: &mut gpm_check::Gen) -> Utilizations {
    let vals = g.vec_f64(7..8, 0.0, 1.0);
    let arr: [f64; 7] = vals.try_into().expect("seven values");
    Utilizations::from_values(arr).expect("in range")
}

#[test]
fn predictions_are_positive_and_below_a_physical_ceiling() {
    let model = toy_model();
    let grid = model.spec().vf_grid();
    gpm_check::check(
        "predictions_are_positive_and_below_a_physical_ceiling",
        |g| {
            let u = draw_utilizations(g);
            let config = grid[g.usize_in(0..grid.len())];
            let p = model.predict(&u, config).expect("fitted config");
            assert!(p > 0.0);
            assert!(p < 2.0 * model.spec().tdp_w(), "{p} W");
        },
    );
}

#[test]
fn power_is_monotone_in_every_utilization() {
    let model = toy_model();
    let grid = model.spec().vf_grid();
    gpm_check::check("power_is_monotone_in_every_utilization", |g| {
        let base = draw_utilizations(g);
        let comp_idx = g.usize_in(0..7);
        let bump = g.f64_in(0.01, 0.5);
        let config = grid[g.usize_in(0..grid.len())];
        let mut bumped = base.as_array();
        bumped[comp_idx] = (bumped[comp_idx] + bump).min(1.0);
        let lo = model.predict(&base, config).expect("fitted config");
        let hi = model
            .predict(
                &Utilizations::from_values(bumped).expect("in range"),
                config,
            )
            .expect("fitted config");
        assert!(hi + 1e-9 >= lo, "raising U must not lower power");
    });
}

#[test]
fn breakdown_components_always_sum_to_total() {
    let model = toy_model();
    let grid = model.spec().vf_grid();
    gpm_check::check("breakdown_components_always_sum_to_total", |g| {
        let u = draw_utilizations(g);
        let config = grid[g.usize_in(0..grid.len())];
        let b = model.breakdown(&u, config).expect("fitted config");
        let sum = b.constant() + b.components().iter().map(|(_, w)| w).sum::<f64>();
        assert!((sum - b.total()).abs() < 1e-9);
        assert!((0.0..=1.0).contains(&b.dynamic_fraction()));
    });
}

#[test]
fn power_rises_with_core_frequency_at_fixed_utilization() {
    let model = toy_model();
    let spec = model.spec().clone();
    gpm_check::check(
        "power_rises_with_core_frequency_at_fixed_utilization",
        |g| {
            let u = draw_utilizations(g);
            let mem = spec.mem_freqs()[g.usize_in(0..spec.mem_freqs().len())];
            let mut prev = 0.0;
            for &core in spec.core_freqs().iter().rev() {
                let p = model
                    .predict(&u, FreqConfig::new(core, mem))
                    .expect("fitted config");
                assert!(p >= prev, "power must not fall as fcore rises");
                prev = p;
            }
        },
    );
}

#[test]
fn model_json_round_trip_preserves_predictions() {
    let model = toy_model();
    let json = model.to_json().expect("serializes");
    let back = PowerModel::from_json(&json).expect("deserializes");
    let config = model.spec().default_config();
    gpm_check::check("model_json_round_trip_preserves_predictions", |g| {
        let u = draw_utilizations(g);
        assert_eq!(
            model.predict(&u, config).expect("prediction"),
            back.predict(&u, config).expect("prediction")
        );
    });
}

#[test]
fn voltage_table_is_normalized_at_reference() {
    let model = toy_model();
    let grid = model.spec().vf_grid();
    gpm_check::check("voltage_table_is_normalized_at_reference", |g| {
        let reference = model.reference();
        let vt = model.voltage_table();
        assert_eq!(vt.voltages(reference).expect("reference"), (1.0, 1.0));
        let config = grid[g.usize_in(0..grid.len())];
        let (vc, vm) = vt.voltages(config).expect("fitted config");
        assert!(vc > 0.0 && vm > 0.0);
        let _ = vt.voltage(Domain::Core, config).expect("core voltage");
    });
}

/// Batched-prediction conformance: for *random* models (random physical
/// coefficients, random voltage curves) and random batches drawn from the
/// V-F grid — including empty batches, singletons and non-lane-multiple
/// tails — `predict_batch` must be *bit-identical* to calling the scalar
/// `predict` per point. Runs with and without `--features simd`; the
/// dispatched kernel must never change a single mantissa bit.
#[test]
fn predict_batch_is_bit_identical_to_scalar_predict_for_random_models() {
    let spec = devices::gtx_titan_x();
    let grid = spec.vf_grid();
    let reference = spec.default_config();
    gpm_check::check(
        "predict_batch_is_bit_identical_to_scalar_predict_for_random_models",
        |g| {
            let entries: Vec<_> = grid
                .iter()
                .map(|&c| (c, [g.f64_in(0.7, 1.3), g.f64_in(0.7, 1.3)]))
                .collect();
            let model = PowerModel::new(
                spec.clone(),
                DomainParams {
                    static_coef: g.f64_in(0.0, 30.0),
                    idle_dyn: g.f64_in(0.0, 40.0),
                    omegas: (0..6).map(|_| g.f64_in(0.0, 40.0)).collect(),
                },
                DomainParams {
                    static_coef: g.f64_in(0.0, 20.0),
                    idle_dyn: g.f64_in(0.0, 20.0),
                    omegas: vec![g.f64_in(0.0, 40.0)],
                },
                VoltageTable::new(reference, entries),
                640.0,
            );
            let u = draw_utilizations(g);
            // Exercise the empty batch, singletons, SSE2/AVX2 tail
            // remainders, a full block and the memoized sweep path
            // (batch larger than the 64-config grid).
            const SIZES: [usize; 9] = [0, 1, 2, 3, 5, 63, 64, 130, 257];
            let n = SIZES[g.usize_in(0..SIZES.len())];
            let configs: Vec<FreqConfig> =
                (0..n).map(|_| grid[g.usize_in(0..grid.len())]).collect();
            let batched = model.predict_batch(&u, &configs).expect("on-grid batch");
            assert_eq!(batched.len(), n);
            for (&c, b) in configs.iter().zip(&batched) {
                let scalar = model.predict(&u, c).expect("on-grid predict");
                assert_eq!(
                    scalar.to_bits(),
                    b.to_bits(),
                    "predict_batch diverged from scalar predict at {c}"
                );
            }
        },
    );
}

/// Degraded inputs keep the conformance contract: zeroed-out components
/// (dead counters), zero model coefficients and all-zero utilizations
/// must flow through the batched kernels exactly as through the scalar
/// path, and an off-grid config must error rather than fabricate a
/// voltage.
#[test]
fn predict_batch_conformance_survives_degraded_components() {
    let model = toy_model();
    let grid = model.spec().vf_grid();
    gpm_check::check(
        "predict_batch_conformance_survives_degraded_components",
        |g| {
            let mut vals = draw_utilizations(g).as_array();
            // Kill a random subset of components outright.
            for v in vals.iter_mut() {
                if g.usize_in(0..3) == 0 {
                    *v = 0.0;
                }
            }
            let u = Utilizations::from_values(vals).expect("in range");
            let configs: Vec<FreqConfig> = (0..g.usize_in(0..100))
                .map(|_| grid[g.usize_in(0..grid.len())])
                .collect();
            let batched = model.predict_batch(&u, &configs).expect("on-grid batch");
            for (&c, b) in configs.iter().zip(&batched) {
                let scalar = model.predict(&u, c).expect("on-grid predict");
                assert_eq!(scalar.to_bits(), b.to_bits());
            }
            let off_grid = FreqConfig::from_mhz(12_345, 67);
            let mut with_bad = configs;
            with_bad.push(off_grid);
            assert!(
                model.predict_batch(&u, &with_bad).is_err(),
                "off-grid config must fail the whole batch"
            );
        },
    );
}

/// The runtime dispatcher must agree with the compile-time feature: with
/// `simd` off the only legal path is the safe blocked kernel (the clean
/// scalar fallback CI's conformance job asserts), with it on an x86_64
/// host must pick a vector path.
#[test]
fn batched_dispatch_agrees_with_the_simd_feature() {
    let kind = gpm::linalg::batch::dispatch_kind();
    if cfg!(feature = "simd") && cfg!(target_arch = "x86_64") {
        assert!(
            kind == "avx2" || kind == "sse2",
            "simd build on x86_64 must dispatch a vector kernel, got {kind}"
        );
    } else {
        assert_eq!(kind, "blocked", "non-simd build must fall back cleanly");
    }
}

/// Synthetic training set from an exact Eq. 5-7 model, small enough that
/// repeated fits stay cheap.
fn synthetic_training() -> TrainingSet {
    let spec = devices::gtx_titan_x();
    let reference = spec.default_config();
    let vbar = |c: FreqConfig| -> f64 {
        let v = |f: f64| {
            if f <= 810.0 {
                0.85
            } else {
                0.85 + 0.00075 * (f - 810.0)
            }
        };
        v(c.core.as_f64()) / v(reference.core.as_f64())
    };
    let mut samples = Vec::new();
    for i in 0..16 {
        let t = i as f64 / 15.0;
        let u = Utilizations::from_values([
            0.1 + 0.4 * t,
            0.5 * (1.0 - t),
            0.0,
            0.2 * t,
            0.3 * (1.0 - t),
            0.2 + 0.5 * t * (1.0 - t),
            (0.8 - 0.7 * t).max(0.05),
        ])
        .unwrap();
        let mut power_by_config = BTreeMap::new();
        for config in spec.vf_grid() {
            let vc = vbar(config);
            let fc = config.core.as_f64() / 1000.0;
            let fm = config.mem.as_f64() / 1000.0;
            let core_act = 20.0
                + 18.0 * u.get(Component::Int)
                + 24.0 * u.get(Component::Sp)
                + 22.0 * u.get(Component::Sf)
                + 15.0 * u.get(Component::SharedMem)
                + 17.0 * u.get(Component::L2Cache);
            let p = 15.0 * vc
                + vc * vc * fc * core_act
                + 10.0
                + fm * (11.0 + 26.0 * u.get(Component::Dram));
            power_by_config.insert(config, p);
        }
        samples.push(MicrobenchSample {
            name: format!("par_{i}"),
            utilizations: u,
            power_by_config,
        });
    }
    TrainingSet {
        device: spec,
        reference,
        l2_bytes_per_cycle: 640.0,
        samples,
    }
}

/// The parallel engine's reproducibility contract: fitting and
/// cross-validating with 2, 4 or 8 worker threads must produce output
/// *byte-identical* to the single-threaded run — `gpm_par::par_map`
/// preserves input order, so the arithmetic is the same in any schedule.
#[test]
fn fit_and_cross_validation_are_thread_count_independent() {
    let training = synthetic_training();
    let config = EstimatorConfig::default();

    gpm::par::set_threads(Some(1));
    let model_seq = Estimator::with_config(config.clone())
        .fit(&training)
        .unwrap();
    let cv_seq = cross_validate(&training, &config, 4).unwrap();
    let model_seq_json = model_seq.to_json().unwrap();

    for threads in [2usize, 4, 8] {
        gpm::par::set_threads(Some(threads));
        let model = Estimator::with_config(config.clone())
            .fit(&training)
            .unwrap();
        let cv = cross_validate(&training, &config, 4).unwrap();
        assert_eq!(
            model.to_json().unwrap(),
            model_seq_json,
            "fit diverged at {threads} threads"
        );
        assert_eq!(cv, cv_seq, "cross-validation diverged at {threads} threads");
    }
    gpm::par::set_threads(None);
}

/// The wire-frame decoder's robustness contract: any valid frame
/// sequence is recovered intact no matter how the byte stream is split;
/// oversized length headers and non-UTF-8 payloads are typed errors
/// that permanently poison the stream; arbitrary garbage never panics.
#[test]
fn frame_decoder_survives_arbitrary_splits_and_garbage() {
    use gpm::serve::proto::{write_frame, FrameDecoder, MAX_FRAME_LEN};
    gpm_check::check("frame_decoder_survives_arbitrary_splits_and_garbage", |g| {
        // Valid frames, random payload content (including multi-byte
        // UTF-8), fed at random split points: recovered verbatim.
        let count = g.usize_in(1..6);
        let frames: Vec<String> = (0..count)
            .map(|_| {
                let len = g.usize_in(0..256);
                (0..len)
                    .map(|_| *g.choose(&['a', 'é', '0', '{', '"', '\u{1F600}']))
                    .collect()
            })
            .collect();
        let mut wire = Vec::new();
        for frame in &frames {
            write_frame(&mut wire, frame).unwrap();
        }
        let mut decoder = FrameDecoder::new();
        let mut got = Vec::new();
        let mut pos = 0;
        while pos < wire.len() {
            let take = g.usize_in(1..9).min(wire.len() - pos);
            decoder.extend(&wire[pos..pos + take]);
            pos += take;
            while let Some(frame) = decoder.next_frame().unwrap() {
                got.push(frame);
            }
        }
        assert_eq!(got, frames, "split points must not change the frames");
        assert_eq!(decoder.buffered(), 0);

        // An oversized length header is a typed error, and the decoder
        // stays errored even if well-formed bytes arrive afterwards.
        let mut decoder = FrameDecoder::new();
        let oversized = (MAX_FRAME_LEN as u32) + 1 + (g.u64_in(0..1024) as u32);
        decoder.extend(&oversized.to_be_bytes());
        let err = decoder.next_frame().expect_err("oversized header");
        assert_eq!(err.kind(), std::io::ErrorKind::InvalidData);
        decoder.extend(&wire);
        assert!(
            decoder.next_frame().is_err(),
            "poisoned decoders must stay poisoned"
        );

        // Garbage prefixes: random bytes produce frames, a wait for
        // more bytes, or a typed error — never a panic.
        let mut decoder = FrameDecoder::new();
        let len = g.usize_in(0..256);
        let garbage: Vec<u8> = (0..len).map(|_| (g.u64_any() & 0xff) as u8).collect();
        decoder.extend(&garbage);
        loop {
            match decoder.next_frame() {
                Ok(Some(_)) => {}
                Ok(None) => break,
                Err(e) => {
                    assert_eq!(e.kind(), std::io::ErrorKind::InvalidData);
                    break;
                }
            }
        }
    });
}
