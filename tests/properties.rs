//! Property-based tests over the public API: invariants that must hold
//! for arbitrary utilizations, configurations and model inputs.

use gpm::core::{DomainParams, PowerModel, Utilizations, VoltageTable};
use gpm::prelude::*;
use gpm::spec::{devices, Domain};
use proptest::prelude::*;

/// A small but non-trivial fitted-model stand-in with hand-set physical
/// (non-negative) coefficients over the GTX Titan X grid.
fn toy_model() -> PowerModel {
    let spec = devices::gtx_titan_x();
    let reference = spec.default_config();
    // Normalized so the curve equals exactly 1 at the reference core
    // frequency (the table pins the reference to 1 regardless).
    let raw = |f: f64| 0.87 + 0.28 * (f - 595.0) / (1164.0 - 595.0);
    let at_ref = raw(reference.core.as_f64());
    let entries: Vec<_> = spec
        .vf_grid()
        .into_iter()
        .map(|c| (c, [raw(c.core.as_f64()) / at_ref, 1.0]))
        .collect();
    PowerModel::new(
        spec,
        DomainParams {
            static_coef: 15.0,
            idle_dyn: 20.0,
            omegas: vec![18.0, 24.0, 30.0, 22.0, 15.0, 17.0],
        },
        DomainParams {
            static_coef: 10.0,
            idle_dyn: 11.0,
            omegas: vec![26.0],
        },
        VoltageTable::new(reference, entries),
        640.0,
    )
}

fn utilization_strategy() -> impl Strategy<Value = Utilizations> {
    proptest::collection::vec(0.0f64..1.0, 7).prop_map(|v| {
        let arr: [f64; 7] = v.try_into().expect("seven values");
        Utilizations::from_values(arr).expect("in range")
    })
}

proptest! {
    #[test]
    fn predictions_are_positive_and_below_a_physical_ceiling(
        u in utilization_strategy(),
        config_idx in 0usize..64,
    ) {
        let model = toy_model();
        let config = model.spec().vf_grid()[config_idx];
        let p = model.predict(&u, config).expect("fitted config");
        prop_assert!(p > 0.0);
        prop_assert!(p < 2.0 * model.spec().tdp_w(), "{p} W");
    }

    #[test]
    fn power_is_monotone_in_every_utilization(
        base in utilization_strategy(),
        comp_idx in 0usize..7,
        bump in 0.01f64..0.5,
        config_idx in 0usize..64,
    ) {
        let model = toy_model();
        let config = model.spec().vf_grid()[config_idx];
        let mut bumped = base.as_array();
        bumped[comp_idx] = (bumped[comp_idx] + bump).min(1.0);
        let lo = model.predict(&base, config).expect("fitted config");
        let hi = model
            .predict(&Utilizations::from_values(bumped).expect("in range"), config)
            .expect("fitted config");
        prop_assert!(hi + 1e-9 >= lo, "raising U must not lower power");
    }

    #[test]
    fn breakdown_components_always_sum_to_total(
        u in utilization_strategy(),
        config_idx in 0usize..64,
    ) {
        let model = toy_model();
        let config = model.spec().vf_grid()[config_idx];
        let b = model.breakdown(&u, config).expect("fitted config");
        let sum = b.constant() + b.components().iter().map(|(_, w)| w).sum::<f64>();
        prop_assert!((sum - b.total()).abs() < 1e-9);
        prop_assert!((0.0..=1.0).contains(&b.dynamic_fraction()));
    }

    #[test]
    fn power_rises_with_core_frequency_at_fixed_utilization(
        u in utilization_strategy(),
        mem_idx in 0usize..4,
    ) {
        let model = toy_model();
        let spec = model.spec().clone();
        let mem = spec.mem_freqs()[mem_idx];
        let mut prev = 0.0;
        for &core in spec.core_freqs().iter().rev() {
            let p = model
                .predict(&u, FreqConfig::new(core, mem))
                .expect("fitted config");
            prop_assert!(p >= prev, "power must not fall as fcore rises");
            prev = p;
        }
    }

    #[test]
    fn model_json_round_trip_preserves_predictions(
        u in utilization_strategy(),
    ) {
        let model = toy_model();
        let json = model.to_json().expect("serializes");
        let back = PowerModel::from_json(&json).expect("deserializes");
        let config = model.spec().default_config();
        prop_assert_eq!(
            model.predict(&u, config).expect("prediction"),
            back.predict(&u, config).expect("prediction")
        );
    }

    #[test]
    fn voltage_table_is_normalized_at_reference(
        config_idx in 0usize..64,
    ) {
        let model = toy_model();
        let reference = model.reference();
        let vt = model.voltage_table();
        prop_assert_eq!(vt.voltages(reference).expect("reference"), (1.0, 1.0));
        let config = model.spec().vf_grid()[config_idx];
        let (vc, vm) = vt.voltages(config).expect("fitted config");
        prop_assert!(vc > 0.0 && vm > 0.0);
        let _ = vt.voltage(Domain::Core, config).expect("core voltage");
    }
}
