//! The crash matrix: kill every registry operation at every filesystem
//! syscall and prove recovery.
//!
//! A clean run of a deterministic publish/activate script is first
//! recorded through a snapshotting filesystem, capturing the on-disk
//! state (temp files excluded) after every completed operation. The
//! same script is then replayed once per operation index per fault kind
//! — crash-point abort, torn write, transient `EIO`, transient
//! `ENOSPC` — through `gpm_faults::FaultyFs`. After each interrupted
//! run the registry is reopened with the real filesystem and must be
//! **byte-identical** to the clean run's state just before the faulted
//! operation: nothing torn survives, nothing committed is lost, no
//! healthy artifact is quarantined, and the ACTIVE pointer (when
//! present) still resolves.
//!
//! `GPM_CRASH_SEED` (default 1) selects among script variants so the
//! nightly matrix covers several operation interleavings.

use gpm::core::{DomainParams, PowerModel, VoltageTable};
use gpm::faults::{FaultyFs, FsFault, RealFs, Vfs};
use gpm::serve::{ModelRegistry, ServeError};
use gpm::spec::devices;
use std::collections::BTreeMap;
use std::io;
use std::path::{Path, PathBuf};
use std::sync::{Arc, Mutex};

/// On-disk state: path (relative to the root) -> file bytes, with
/// uncommitted `*.tmp` files excluded. Directories carry no state of
/// their own and are ignored.
type Snapshot = BTreeMap<String, Vec<u8>>;

fn snapshot(root: &Path) -> Snapshot {
    let mut snap = Snapshot::new();
    walk(root, root, &mut snap);
    snap
}

fn walk(root: &Path, dir: &Path, snap: &mut Snapshot) {
    let Ok(entries) = std::fs::read_dir(dir) else {
        return;
    };
    for entry in entries.flatten() {
        let path = entry.path();
        if path.is_dir() {
            walk(root, &path, snap);
        } else {
            let rel = path
                .strip_prefix(root)
                .expect("walk stays under root")
                .to_string_lossy()
                .into_owned();
            if rel.ends_with(".tmp") {
                continue;
            }
            snap.insert(rel, std::fs::read(&path).expect("readable file"));
        }
    }
}

/// A [`Vfs`] that records a snapshot of the tree after every completed
/// operation — the oracle the faulted runs are compared against. The
/// capture order matches [`FaultyFs`]'s charge order exactly: both wrap
/// the same op set, so snapshot `k` is the state after `k` ops.
#[derive(Debug)]
struct SnapshotFs {
    root: PathBuf,
    snaps: Mutex<Vec<Snapshot>>,
}

impl SnapshotFs {
    fn new(root: PathBuf) -> Self {
        let initial = snapshot(&root);
        SnapshotFs {
            root,
            snaps: Mutex::new(vec![initial]),
        }
    }

    fn snapshots(&self) -> Vec<Snapshot> {
        self.snaps.lock().expect("snaps poisoned").clone()
    }

    fn capture(&self) {
        let snap = snapshot(&self.root);
        self.snaps.lock().expect("snaps poisoned").push(snap);
    }
}

impl Vfs for SnapshotFs {
    fn read_to_string(&self, path: &Path) -> io::Result<String> {
        let out = RealFs.read_to_string(path);
        self.capture();
        out
    }

    fn write(&self, path: &Path, bytes: &[u8]) -> io::Result<()> {
        let out = RealFs.write(path, bytes);
        self.capture();
        out
    }

    fn fsync_file(&self, path: &Path) -> io::Result<()> {
        let out = RealFs.fsync_file(path);
        self.capture();
        out
    }

    fn rename(&self, from: &Path, to: &Path) -> io::Result<()> {
        let out = RealFs.rename(from, to);
        self.capture();
        out
    }

    fn fsync_dir(&self, path: &Path) -> io::Result<()> {
        let out = RealFs.fsync_dir(path);
        self.capture();
        out
    }

    fn create_dir_all(&self, path: &Path) -> io::Result<()> {
        let out = RealFs.create_dir_all(path);
        self.capture();
        out
    }

    fn read_dir(&self, path: &Path) -> io::Result<Vec<String>> {
        let out = RealFs.read_dir(path);
        self.capture();
        out
    }

    fn remove_file(&self, path: &Path) -> io::Result<()> {
        let out = RealFs.remove_file(path);
        self.capture();
        out
    }

    fn exists(&self, path: &Path) -> bool {
        // Not charged by FaultyFs either: no snapshot.
        RealFs.exists(path)
    }
}

fn tmp(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir()
        .join("gpm-registry-crash")
        .join(format!("{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// A tiny, finite, fit-free model: the matrix exercises persistence,
/// not prediction quality.
fn tiny_model() -> PowerModel {
    let spec = devices::gtx_titan_x();
    let reference = spec.default_config();
    PowerModel::new(
        spec,
        DomainParams {
            static_coef: 30.0,
            idle_dyn: 20.0,
            omegas: vec![1.0; 6],
        },
        DomainParams {
            static_coef: 10.0,
            idle_dyn: 11.0,
            omegas: vec![1.0],
        },
        VoltageTable::new(reference, []),
        600.0,
    )
}

/// The deterministic workload each matrix cell replays: a mix of
/// publishes (including the auto-activating first one) and explicit
/// activations. The seed picks the interleaving.
fn script(reg: &ModelRegistry, seed: u64) -> Result<(), ServeError> {
    let model = tiny_model();
    match seed % 3 {
        0 => {
            reg.publish("alpha", &model, None)?;
            reg.publish("alpha", &model, None)?;
            reg.activate("alpha", 2)?;
            reg.publish("beta", &model, None)?;
            reg.activate("beta", 1)?;
        }
        1 => {
            reg.publish("beta", &model, None)?;
            reg.publish("alpha", &model, None)?;
            reg.activate("alpha", 1)?;
            reg.publish("beta", &model, None)?;
            reg.activate("beta", 2)?;
        }
        _ => {
            reg.publish("alpha", &model, None)?;
            reg.publish("beta", &model, None)?;
            reg.activate("beta", 1)?;
            reg.activate("alpha", 1)?;
            reg.publish("alpha", &model, None)?;
        }
    }
    Ok(())
}

fn crash_seed() -> u64 {
    std::env::var("GPM_CRASH_SEED")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(1)
}

/// Every fs op of every registry operation, killed four ways each.
#[test]
fn crash_matrix_recovers_to_the_last_completed_operation() {
    let seed = crash_seed();

    // Clean oracle run: record the state after every fs op.
    let clean_dir = tmp(&format!("clean-{seed}"));
    let snap_fs = Arc::new(SnapshotFs::new(clean_dir.clone()));
    let reg = ModelRegistry::open_with_fs(&clean_dir, snap_fs.clone()).expect("clean open");
    script(&reg, seed).expect("clean script");
    let snaps = snap_fs.snapshots();
    let total_ops = snaps.len() - 1;
    assert!(total_ops > 20, "script too small to be a meaningful matrix");

    let faults = [
        ("crash", FsFault::Crash),
        ("torn", FsFault::TornWrite { keep: 7 }),
        ("eio", FsFault::Eio),
        ("nospace", FsFault::NoSpace),
    ];
    for (label, fault) in faults {
        for (k, clean_snap) in snaps.iter().enumerate().take(total_ops) {
            let dir = tmp(&format!("{label}-{seed}-{k}"));
            let faulty = Arc::new(FaultyFs::inject(RealFs, k as u64, fault));
            let result = ModelRegistry::open_with_fs(&dir, faulty.clone())
                .and_then(|reg| script(&reg, seed));
            assert!(
                result.is_err(),
                "{label} at op {k}: the injected fault must surface\n{}",
                faulty.log().join("\n")
            );

            // Reopen on the real filesystem: recovery must restore the
            // exact state of the clean run before the faulted op.
            let recovered = ModelRegistry::open(&dir).unwrap_or_else(|e| {
                panic!(
                    "{label} at op {k}: recovery open failed: {e}\n{}",
                    faulty.log().join("\n")
                )
            });
            let got = snapshot(&dir);
            assert_eq!(
                &got,
                clean_snap,
                "{label} at op {k}: recovered state is not byte-identical to the \
                 clean run before the fault\n{}",
                faulty.log().join("\n")
            );
            assert!(
                got.keys().all(|p| !p.ends_with(".quarantined")),
                "{label} at op {k}: a pure interruption must never quarantine\n{got:?}"
            );

            // The surviving registry is fully consistent: every listed
            // version loads and the pointer (when present) resolves.
            for info in recovered.list().expect("list after recovery") {
                for v in &info.versions {
                    recovered
                        .load(&info.name, Some(*v))
                        .unwrap_or_else(|e| panic!("{label} at op {k}: {}@v{v}: {e}", info.name));
                }
            }
            if recovered.active().expect("pointer readable").is_some() {
                recovered
                    .load_active()
                    .unwrap_or_else(|e| panic!("{label} at op {k}: active unresolvable: {e}"));
            }
            let _ = std::fs::remove_dir_all(&dir);
        }
    }
    let _ = std::fs::remove_dir_all(&clean_dir);
}

/// Torn writes larger than the integrity trailer's length field must be
/// detected and swept even when the temp rename already happened — the
/// trailer is the last line of defence when a kernel lies about a
/// completed write. Simulated directly: commit a valid entry, then
/// truncate it on disk and reopen.
#[test]
fn truncated_committed_entry_is_quarantined_not_served() {
    let dir = tmp("truncate");
    let reg = ModelRegistry::open(&dir).expect("open");
    script(&reg, 0).expect("script");

    let victim = dir.join("models/alpha/v1.json");
    let bytes = std::fs::read(&victim).expect("victim readable");
    std::fs::write(&victim, &bytes[..bytes.len() / 2]).expect("truncate");

    let reg = ModelRegistry::open(&dir).expect("reopen");
    let report = reg.fsck().expect("fsck");
    assert!(
        report
            .quarantined
            .iter()
            .any(|q| q.contains("alpha/v1.json")),
        "{report:?}"
    );
    // The untouched versions still load; the active pointer still
    // resolves (seed-0 script leaves beta@v1 active, which is intact).
    assert!(reg.load("alpha", Some(2)).is_ok());
    assert!(reg.load_active().is_ok());
    let _ = std::fs::remove_dir_all(&dir);
}
