//! Golden round-trip tests pinning the JSON schema of the pipeline's
//! report types. The fixtures under `tests/golden/` are committed; a
//! schema change (renamed field, reordered keys, new representation)
//! fails here before it silently breaks downstream consumers.
//!
//! Regenerate the fixtures after an *intentional* schema change with
//! `GPM_UPDATE_GOLDEN=1 cargo test --test report_schema`.

use gpm::core::{CvReport, DomainParams, FitReport, PowerModel, VoltageTable};
use gpm::json::{from_str, write, Json, ToJson};
use gpm::par::timer::PhaseTimings;
use gpm::spec::{devices, Component, FreqConfig};
use std::fs;
use std::path::PathBuf;

fn golden_path(name: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests/golden")
        .join(name)
}

/// Compares `actual` against a committed fixture, regenerating it when
/// `GPM_UPDATE_GOLDEN` is set.
fn assert_matches_golden(name: &str, actual: &str) {
    let path = golden_path(name);
    if std::env::var("GPM_UPDATE_GOLDEN").is_ok() {
        fs::write(&path, actual).expect("write golden fixture");
        return;
    }
    let golden = fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!(
            "missing fixture {} ({e}); run with GPM_UPDATE_GOLDEN=1",
            path.display()
        )
    });
    assert_eq!(
        golden, actual,
        "{name} drifted from its committed schema; if intentional, regenerate with \
         GPM_UPDATE_GOLDEN=1 cargo test --test report_schema"
    );
}

/// A fully-populated FitReport with deterministic values (no pipeline
/// run involved, so the fixture is stable byte-for-byte).
fn sample_fit_report() -> FitReport {
    FitReport {
        iterations: 7,
        converged: true,
        rmse_history: vec![12.5, 3.25, 1.0625],
        training_mape: 2.875,
        coefficient_sigma: vec![0.5, 0.25],
        timings: PhaseTimings::default(),
        robust: true,
        watchdog_restarts: 1,
        robust_reweights: 21,
        degraded_components: vec![Component::Dp, Component::Dram],
    }
}

fn sample_cv_report() -> CvReport {
    CvReport {
        folds: 3,
        fold_mape: vec![4.5, 5.25, 3.75],
        overall_mape: 4.5,
    }
}

/// A hand-assembled PowerModel with exactly-representable values, so
/// the fixture is byte-stable without running the estimator.
fn sample_power_model() -> PowerModel {
    let spec = devices::gtx_titan_x();
    let reference = spec.default_config();
    let low = FreqConfig::from_mhz(595, 3505);
    PowerModel::new(
        spec,
        DomainParams {
            static_coef: 15.0,
            idle_dyn: 20.0,
            omegas: vec![20.0, 21.5, 22.0, 23.25, 24.0, 25.5],
        },
        DomainParams {
            static_coef: 10.0,
            idle_dyn: 11.0,
            omegas: vec![26.0],
        },
        VoltageTable::new(reference, [(low, [0.875, 0.9375])]),
        600.0,
    )
    .with_residual_sigma(1.5)
}

#[test]
fn power_model_round_trips_and_matches_golden() {
    // The registry (gpm-serve) persists PowerModels verbatim, so this
    // schema is now a stored-data contract, not just an in-memory one.
    let model = sample_power_model();
    // `PowerModel::to_json` (inherent) returns a String; the trait impl
    // is what the registry stores, so pin that one.
    let json = write(&ToJson::to_json(&model));
    let back: PowerModel = from_str(&json).expect("power model parses back");
    assert_eq!(model, back);
    assert_matches_golden("power_model.json", &json);
}

#[test]
fn pre_sigma_power_models_still_parse() {
    // Models serialized before `residual_sigma_w` existed must keep
    // parsing, with the sigma defaulting to zero.
    let full = ToJson::to_json(&sample_power_model());
    let legacy = match full {
        Json::Obj(fields) => Json::Obj(
            fields
                .into_iter()
                .filter(|(name, _)| name != "residual_sigma_w")
                .collect(),
        ),
        other => other,
    };
    let model: PowerModel = from_str(&write(&legacy)).expect("legacy power model parses");
    assert_eq!(model.residual_sigma_w(), 0.0);
    assert_eq!(model.reference(), devices::gtx_titan_x().default_config());
}

#[test]
fn fit_report_round_trips_and_matches_golden() {
    let report = sample_fit_report();
    let json = write(&report.to_json());
    let back: FitReport = from_str(&json).expect("fit report parses back");
    assert_eq!(report, back);
    assert_matches_golden("fit_report.json", &json);
}

#[test]
fn cv_report_round_trips_and_matches_golden() {
    let report = sample_cv_report();
    let json = write(&report.to_json());
    let back: CvReport = from_str(&json).expect("cv report parses back");
    assert_eq!(report, back);
    assert_matches_golden("cv_report.json", &json);
}

#[test]
fn fit_report_with_recorded_timings_round_trips() {
    // Timings carry Durations; they serialize as exact nanosecond
    // counts, so the round trip is equality, not approximation.
    let timings: PhaseTimings = from_str(
        r#"{"entries":[{"label":"voltage_step","calls":3,"total_ns":1500000},
                       {"label":"coefficient_step","calls":3,"total_ns":250}]}"#,
    )
    .expect("timings parse");
    let report = FitReport {
        timings,
        ..sample_fit_report()
    };
    let json = write(&report.to_json());
    let back: FitReport = from_str(&json).expect("fit report parses back");
    assert_eq!(report, back);
}

#[test]
fn pre_timings_fit_reports_still_parse() {
    // Reports serialized before the `timings` field existed must keep
    // parsing (the field defaults to empty timings).
    let legacy = r#"{"iterations":4,"converged":false,
                     "rmse_history":[9.0,8.0],"training_mape":6.5,
                     "coefficient_sigma":[]}"#;
    let report: FitReport = from_str(legacy).expect("legacy fit report parses");
    assert_eq!(report.iterations, 4);
    assert!(!report.converged);
    assert_eq!(report.timings, PhaseTimings::default());
}

#[test]
fn pre_robustness_fit_reports_still_parse() {
    // Reports serialized before the robustness fields existed must keep
    // parsing: `robust` defaults to false, the recovery counters to zero
    // and `degraded_components` to empty.
    let legacy = r#"{"iterations":7,"converged":true,
                     "rmse_history":[12.5,3.25,1.0625],"training_mape":2.875,
                     "coefficient_sigma":[0.5,0.25],
                     "timings":{"entries":[]}}"#;
    let report: FitReport = from_str(legacy).expect("pre-robustness fit report parses");
    assert!(!report.robust);
    assert_eq!(report.watchdog_restarts, 0);
    assert_eq!(report.robust_reweights, 0);
    assert!(report.degraded_components.is_empty());
}

#[test]
fn unknown_fields_are_tolerated() {
    // Forward compatibility: newer writers may add fields.
    let future = r#"{"folds":2,"fold_mape":[1.0,2.0],"overall_mape":1.5,
                     "added_in_v2":{"nested":true}}"#;
    let report: CvReport = from_str(future).expect("future cv report parses");
    assert_eq!(report.folds, 2);
    assert_eq!(report.overall_mape, 1.5);
}
