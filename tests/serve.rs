//! End-to-end tests of the serving subsystem (gpm-serve): determinism
//! across worker-thread counts, registry persistence, admission
//! control and graceful drain.

use gpm::core::{DomainParams, Estimator, PowerModel, Utilizations, VoltageTable};
use gpm::dvfs::{pareto_frontier, Governor, Objective};
use gpm::profiler::Profiler;
use gpm::serve::{
    Client, EngineConfig, ModelRegistry, PredictionEngine, Reply, Request, Response, ServeError,
    ServerConfig, ServerHandle,
};
use gpm::sim::SimulatedGpu;
use gpm::spec::{devices, FreqConfig};
use gpm::workloads::{microbenchmark_suite, validation_suite};
use std::path::PathBuf;
use std::sync::OnceLock;

/// Fit the reference model once for the whole test binary.
fn fitted_model() -> PowerModel {
    static MODEL: OnceLock<PowerModel> = OnceLock::new();
    MODEL
        .get_or_init(|| {
            let spec = devices::gtx_titan_x();
            let mut gpu = SimulatedGpu::new(spec.clone(), 42);
            let training = Profiler::with_repeats(&mut gpu, 1)
                .profile_suite(&microbenchmark_suite(&spec))
                .unwrap();
            Estimator::new().fit(&training).unwrap()
        })
        .clone()
}

fn utils() -> Utilizations {
    Utilizations::from_values([0.2, 0.6, 0.0, 0.1, 0.2, 0.3, 0.5]).unwrap()
}

/// A mixed batch exercising every request type, with duplicates.
fn mixed_batch() -> Vec<Request> {
    let config = FreqConfig::from_mhz(975, 3505);
    let low = FreqConfig::from_mhz(595, 810);
    vec![
        Request::Power {
            utilizations: utils(),
            config,
        },
        Request::Energy {
            kernel: "LBM".to_string(),
            config: low,
        },
        Request::BestConfig {
            kernel: "GEMM".to_string(),
            objective: Objective::MinEdp,
        },
        Request::Pareto {
            kernel: "SRAD_1".to_string(),
            max_points: 0,
        },
        Request::Energy {
            kernel: "BLCKSC".to_string(),
            config,
        },
        Request::BestConfig {
            kernel: "GEMM".to_string(),
            objective: Objective::MinEdp,
        },
        Request::Pareto {
            kernel: "LBM".to_string(),
            max_points: 3,
        },
        Request::Power {
            utilizations: utils(),
            config: low,
        },
    ]
}

fn serialize(replies: &[Reply]) -> Vec<String> {
    replies
        .iter()
        .map(|r| gpm::json::to_string(r).unwrap())
        .collect()
}

/// The acceptance gate: serialized replies are byte-identical at 1, 4
/// and 8 worker threads, and match the direct pipeline calls.
#[test]
fn batched_replies_are_bit_identical_at_any_thread_count() {
    let model = fitted_model();
    let batch = mixed_batch();

    let mut per_thread_count = Vec::new();
    for threads in [1usize, 4, 8] {
        gpm::par::set_threads(Some(threads));
        let mut engine = PredictionEngine::new(model.clone(), "m@v1", &EngineConfig::default());
        let replies = engine.process_batch(&batch);
        assert!(
            replies.iter().all(Reply::is_ok),
            "at {threads} threads: {replies:?}"
        );
        per_thread_count.push(serialize(&replies));
    }
    gpm::par::set_threads(None);
    assert_eq!(
        per_thread_count[0], per_thread_count[1],
        "1 vs 4 worker threads"
    );
    assert_eq!(
        per_thread_count[0], per_thread_count[2],
        "1 vs 8 worker threads"
    );

    // Cross-check each reply kind against the direct pipeline, using a
    // device seeded exactly like the engine's (EngineConfig default).
    let spec = model.spec().clone();
    let seed = EngineConfig::default().seed;

    // Power = PowerModel::predict, bit for bit.
    let direct = model
        .predict(&utils(), FreqConfig::from_mhz(975, 3505))
        .unwrap();
    assert_eq!(
        per_thread_count[0][0],
        gpm::json::to_string(&Reply::Ok(Response::Power { watts: direct })).unwrap()
    );

    // Energy = profile at reference on a fresh device, predict, time.
    let lbm = validation_suite(&spec)
        .into_iter()
        .find(|k| k.name() == "LBM")
        .unwrap();
    let low = FreqConfig::from_mhz(595, 810);
    let mut gpu = SimulatedGpu::new(spec.clone(), seed);
    let profile = Profiler::with_repeats(&mut gpu, 1)
        .profile_at_reference(&lbm)
        .unwrap();
    let power_w = model.predict(&profile.utilizations, low).unwrap();
    gpu.set_clocks(low).unwrap();
    let time_s = gpu.execute(&lbm).duration_s;
    assert_eq!(
        per_thread_count[0][1],
        gpm::json::to_string(&Reply::Ok(Response::Energy {
            joules: power_w * time_s,
            time_s,
            power_w,
        }))
        .unwrap()
    );

    // BestConfig = the governor's first-call decision on a fresh device.
    let gemm = validation_suite(&spec)
        .into_iter()
        .find(|k| k.name() == "GEMM")
        .unwrap();
    let mut gpu = SimulatedGpu::new(spec.clone(), seed);
    let mut governor = Governor::new(&mut gpu, model.clone(), Objective::MinEdp);
    let run = governor.run_kernel(&gemm).unwrap();
    assert_eq!(
        per_thread_count[0][2],
        gpm::json::to_string(&Reply::Ok(Response::BestConfig {
            config: run.decision.config,
            power_w: run.decision.predicted_power_w,
            time_s: run.decision.predicted_time_s,
            reference_time_s: run.decision.reference_time_s,
        }))
        .unwrap()
    );

    // Pareto = pareto_frontier on a fresh device.
    let srad = validation_suite(&spec)
        .into_iter()
        .find(|k| k.name() == "SRAD_1")
        .unwrap();
    let mut gpu = SimulatedGpu::new(spec.clone(), seed);
    let points = pareto_frontier(&mut gpu, &model, &srad).unwrap();
    assert_eq!(
        per_thread_count[0][3],
        gpm::json::to_string(&Reply::Ok(Response::Pareto { points })).unwrap()
    );
}

/// The grid-sweep requests (`Pareto`, `BestConfig`) are pinned against a
/// committed fixture captured *before* the batched-prediction rewire:
/// serialized replies must stay byte-identical forever, whatever path
/// (scalar, blocked, SIMD) evaluates the model underneath. Regenerate
/// with `GPM_BLESS=1 cargo test pareto_and_best_config` only for a
/// deliberate, documented protocol change.
#[test]
fn pareto_and_best_config_replies_match_the_golden_fixture() {
    let model = fitted_model();
    let mut engine = PredictionEngine::new(model, "golden@v1", &EngineConfig::default());
    let batch = vec![
        Request::Pareto {
            kernel: "LBM".to_string(),
            max_points: 0,
        },
        Request::Pareto {
            kernel: "GEMM".to_string(),
            max_points: 4,
        },
        Request::BestConfig {
            kernel: "GEMM".to_string(),
            objective: Objective::MinEdp,
        },
        Request::BestConfig {
            kernel: "LBM".to_string(),
            objective: Objective::MinEnergy,
        },
        Request::BestConfig {
            kernel: "HOTS".to_string(),
            objective: Objective::MinEnergyWithSlowdown(1.1),
        },
        Request::Pareto {
            kernel: "SRAD_1".to_string(),
            max_points: 0,
        },
    ];
    let replies = engine.process_batch(&batch);
    assert!(replies.iter().all(Reply::is_ok), "{replies:?}");
    let actual = serialize(&replies).join("\n") + "\n";

    let path = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/golden/serve_replies.json");
    if std::env::var("GPM_BLESS").is_ok() {
        std::fs::write(&path, &actual).expect("write golden serve replies");
        return;
    }
    let golden = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!(
            "missing golden fixture {} ({e}); run with GPM_BLESS=1 to create it",
            path.display()
        )
    });
    assert_eq!(
        golden, actual,
        "serve grid-sweep replies drifted from the pre-batching fixture"
    );
}

#[test]
fn registry_round_trips_models_and_rejects_non_finite_ones() {
    let root = std::env::temp_dir().join("gpm-serve-it-registry");
    let _ = std::fs::remove_dir_all(&root);
    let registry = ModelRegistry::open(&root).unwrap();
    let model = fitted_model();

    let v1 = registry.publish("titan", &model, None).unwrap();
    assert_eq!(v1, 1);
    let entry = registry.load_active().unwrap();
    assert_eq!(entry.identity(), "titan@v1");
    assert_eq!(entry.model, model, "persisted model round-trips exactly");
    assert_eq!(entry.device, model.spec().name());

    let v2 = registry.publish("titan", &model, None).unwrap();
    assert_eq!(v2, 2);
    // Publishing again does not steal the active pointer.
    assert_eq!(registry.active().unwrap(), Some(("titan".to_string(), 1)));
    registry.activate("titan", 2).unwrap();
    assert_eq!(registry.load_active().unwrap().version, 2);

    // A degraded fit with a NaN coefficient is refused, not persisted.
    let spec = devices::gtx_titan_x();
    let reference = spec.default_config();
    let broken = PowerModel::new(
        spec,
        DomainParams {
            static_coef: f64::NAN,
            idle_dyn: 20.0,
            omegas: vec![1.0; 6],
        },
        DomainParams {
            static_coef: 10.0,
            idle_dyn: 11.0,
            omegas: vec![1.0],
        },
        VoltageTable::new(reference, []),
        600.0,
    );
    let err = registry.publish("broken", &broken, None).unwrap_err();
    assert!(matches!(err, ServeError::NonFinite(_)), "{err}");
    assert!(
        err.to_string().contains("static_coef"),
        "error names the offending path: {err}"
    );
    // Nothing was written for the rejected model.
    assert!(matches!(
        registry.load("broken", None),
        Err(ServeError::UnknownModel(_))
    ));
}

#[test]
fn server_sheds_beyond_the_queue_bound_and_drains_on_shutdown() {
    let engine = PredictionEngine::new(fitted_model(), "m@v1", &EngineConfig::default());
    // A one-deep queue with one-request batches: the first slow request
    // occupies the engine, the second sits in the queue, and the burst
    // behind them is shed with a typed reply.
    let config = ServerConfig {
        queue_depth: 1,
        batch_max: 1,
        ..ServerConfig::default()
    };
    let handle = ServerHandle::spawn(engine, config);
    let client: Client = handle.client();

    let burst: Vec<Request> = (0..8)
        .map(|i| Request::Pareto {
            kernel: "LBM".to_string(),
            max_points: i, // distinct requests: no cache short-circuit
        })
        .collect();
    let replies = client.call_batch(&burst);
    let ok = replies.iter().filter(|r| r.is_ok()).count();
    let shed = replies
        .iter()
        .filter(|r| matches!(r, Reply::Overloaded { queue_depth: 1 }))
        .count();
    assert_eq!(ok + shed, replies.len(), "{replies:?}");
    assert!(ok >= 1, "at least the first request is admitted");
    assert!(shed >= 1, "a one-deep queue sheds a same-instant burst");

    // Every admitted request was answered before shutdown returned.
    let (engine, stats) = handle.shutdown();
    assert_eq!(stats.served, ok as u64);
    assert_eq!(stats.shed, shed as u64);
    assert_eq!(engine.stats().requests, ok as u64);
    assert!(
        !replies
            .iter()
            .any(|r| matches!(r, Reply::Error { message } if message.contains("exited"))),
        "graceful drain: no request was dropped mid-flight"
    );
}

#[test]
fn identical_best_config_requests_share_one_profile_through_the_server() {
    let engine = PredictionEngine::new(fitted_model(), "m@v1", &EngineConfig::default());
    let handle = ServerHandle::spawn(engine, ServerConfig::default());
    let client = handle.client();
    let batch: Vec<Request> = (0..8)
        .map(|_| Request::BestConfig {
            kernel: "LBM".to_string(),
            objective: Objective::MinEnergy,
        })
        .collect();
    let replies = client.call_batch(&batch);
    assert!(replies.iter().all(Reply::is_ok), "{replies:?}");
    assert!(replies.iter().all(|r| r == &replies[0]));

    let (engine, _) = handle.shutdown();
    let stats = engine.governor_stats();
    assert_eq!(stats.profiled, 1, "the kernel was profiled exactly once");
    assert_eq!(
        stats.profiled as usize + stats.cache_hits as usize + engine.stats().cache.hits as usize,
        8,
        "every other request hit the decision cache or the LRU"
    );
}
