//! End-to-end tests of the TCP reactor front end (gpm-serve): replies
//! byte-identical to the direct engine at any shard count, slow-loris
//! and mid-stream-disconnect resilience, graceful drain of hundreds of
//! in-flight pipelined requests, and reactor metrics.
#![cfg(unix)]

use gpm::core::{Estimator, PowerModel, Utilizations};
use gpm::dvfs::Objective;
use gpm::profiler::Profiler;
use gpm::serve::{
    EngineConfig, PredictionEngine, Reply, Request, Response, ServerConfig, ServerHandle, TcpClient,
};
use gpm::sim::SimulatedGpu;
use gpm::spec::{devices, FreqConfig};
use gpm::workloads::microbenchmark_suite;
use std::io::{Read, Write};
use std::net::TcpStream;
use std::sync::OnceLock;
use std::time::Duration;

/// Fit the reference model once for the whole test binary.
fn fitted_model() -> PowerModel {
    static MODEL: OnceLock<PowerModel> = OnceLock::new();
    MODEL
        .get_or_init(|| {
            let spec = devices::gtx_titan_x();
            let mut gpu = SimulatedGpu::new(spec.clone(), 42);
            let training = Profiler::with_repeats(&mut gpu, 1)
                .profile_suite(&microbenchmark_suite(&spec))
                .unwrap();
            Estimator::new().fit(&training).unwrap()
        })
        .clone()
}

fn engine() -> PredictionEngine {
    PredictionEngine::new(fitted_model(), "reactor@v1", &EngineConfig::default())
}

fn utils() -> Utilizations {
    Utilizations::from_values([0.2, 0.6, 0.0, 0.1, 0.2, 0.3, 0.5]).unwrap()
}

/// A mixed batch exercising every request type, with duplicates.
fn mixed_batch() -> Vec<Request> {
    let config = FreqConfig::from_mhz(975, 3505);
    let low = FreqConfig::from_mhz(595, 810);
    vec![
        Request::Power {
            utilizations: utils(),
            config,
        },
        Request::Energy {
            kernel: "LBM".to_string(),
            config: low,
        },
        Request::BestConfig {
            kernel: "GEMM".to_string(),
            objective: Objective::MinEdp,
        },
        Request::Pareto {
            kernel: "SRAD_1".to_string(),
            max_points: 0,
        },
        Request::Energy {
            kernel: "BLCKSC".to_string(),
            config,
        },
        Request::BestConfig {
            kernel: "GEMM".to_string(),
            objective: Objective::MinEdp,
        },
        Request::Pareto {
            kernel: "LBM".to_string(),
            max_points: 3,
        },
        Request::Power {
            utilizations: utils(),
            config: low,
        },
    ]
}

fn serialize(replies: &[Reply]) -> Vec<String> {
    replies
        .iter()
        .map(|r| gpm::json::to_string(r).unwrap())
        .collect()
}

/// The reactor's determinism contract: TCP replies are byte-identical
/// to direct `process_batch` calls, at one shard and at many.
#[test]
fn tcp_replies_match_the_direct_engine_at_any_shard_count() {
    let batch = mixed_batch();
    let mut oracle_engine = engine();
    let oracle = serialize(&oracle_engine.process_batch(&batch));

    for shards in [1usize, 4] {
        let config = ServerConfig {
            shards,
            ..ServerConfig::default()
        };
        let handle = ServerHandle::bind(engine(), config, "127.0.0.1:0").unwrap();
        let mut client = TcpClient::connect(handle.local_addr().unwrap()).unwrap();
        let replies = client.pipeline(&batch).unwrap();
        assert_eq!(
            serialize(&replies),
            oracle,
            "replies diverged from the direct engine at {shards} shard(s)"
        );
        drop(client);
        let (_, stats) = handle.shutdown();
        assert_eq!(stats.served, batch.len() as u64);
        assert_eq!(stats.shed, 0);
    }
}

/// A slow-loris connection (a partial length prefix, held open) must
/// not stall other clients — and once the frame completes, it is
/// answered like any other.
#[test]
fn slow_loris_partial_frame_does_not_stall_other_connections() {
    let handle = ServerHandle::bind(engine(), ServerConfig::default(), "127.0.0.1:0").unwrap();
    let addr = handle.local_addr().unwrap();

    // The loris: write two bytes of a four-byte length prefix and stop.
    let request = Request::Power {
        utilizations: utils(),
        config: FreqConfig::from_mhz(975, 3505),
    };
    let payload = gpm::serve::proto::encode_request(7, &request);
    let prefix = (payload.len() as u32).to_be_bytes();
    let mut loris = TcpStream::connect(addr).unwrap();
    loris.set_nodelay(true).unwrap();
    loris.write_all(&prefix[..2]).unwrap();

    // Meanwhile a well-behaved client completes full round trips.
    let mut client = TcpClient::connect(addr).unwrap();
    for _ in 0..8 {
        let reply = client.call(&request).unwrap();
        assert!(reply.is_ok(), "{reply:?}");
    }

    // Completing the stalled frame gets the loris its reply too.
    loris.write_all(&prefix[2..]).unwrap();
    loris.write_all(payload.as_bytes()).unwrap();
    loris
        .set_read_timeout(Some(Duration::from_secs(30)))
        .unwrap();
    let mut reply_prefix = [0u8; 4];
    loris.read_exact(&mut reply_prefix).unwrap();
    let len = u32::from_be_bytes(reply_prefix) as usize;
    let mut reply = vec![0u8; len];
    loris.read_exact(&mut reply).unwrap();
    let (id, reply) =
        gpm::serve::proto::decode_reply(std::str::from_utf8(&reply).unwrap()).unwrap();
    assert_eq!(id, 7);
    assert!(reply.is_ok(), "{reply:?}");

    drop(loris);
    drop(client);
    let (_, stats) = handle.shutdown();
    assert_eq!(stats.served, 9);
    assert_eq!(stats.shed, 0);
}

/// A client that pipelines requests and disconnects before reading its
/// replies must not take the server (or other connections) with it.
#[test]
fn client_disconnect_mid_stream_leaves_other_connections_intact() {
    let handle = ServerHandle::bind(engine(), ServerConfig::default(), "127.0.0.1:0").unwrap();
    let addr = handle.local_addr().unwrap();

    let request = Request::Power {
        utilizations: utils(),
        config: FreqConfig::from_mhz(975, 3505),
    };
    {
        // Write several frames, then drop without reading a single reply.
        let mut rude = TcpStream::connect(addr).unwrap();
        rude.set_nodelay(true).unwrap();
        for id in 0..6u64 {
            let payload = gpm::serve::proto::encode_request(id, &request);
            rude.write_all(&(payload.len() as u32).to_be_bytes())
                .unwrap();
            rude.write_all(payload.as_bytes()).unwrap();
        }
    }

    // The server keeps answering everyone else.
    let mut client = TcpClient::connect(addr).unwrap();
    let replies = client
        .pipeline(&(0..8).map(|_| request.clone()).collect::<Vec<_>>())
        .unwrap();
    assert!(replies.iter().all(Reply::is_ok), "{replies:?}");

    drop(client);
    let (_, stats) = handle.shutdown();
    // The rude client's requests may or may not have been admitted
    // before the hangup was seen; the surviving client's definitely were.
    assert!(stats.served >= 8, "{stats:?}");
    assert_eq!(stats.shed, 0);
}

/// Shutdown with hundreds of in-flight pipelined requests: every
/// admitted request is answered exactly once, in order — no loss, no
/// duplication.
#[test]
fn shutdown_drains_hundreds_of_in_flight_pipelined_requests() {
    const N: u64 = 300;
    let config = ServerConfig {
        queue_depth: 1024,
        conn_inflight: 1024,
        max_requests: Some(N),
        shards: 4,
        ..ServerConfig::default()
    };
    let handle = ServerHandle::bind(engine(), config, "127.0.0.1:0").unwrap();
    let mut client = TcpClient::connect(handle.local_addr().unwrap()).unwrap();

    // Distinct requests, so the LRU cannot mask a lost or repeated one.
    let requests: Vec<Request> = (0..N)
        .map(|i| {
            let mut values = [0.0f64; 7];
            for (c, v) in values.iter_mut().enumerate() {
                *v = ((i as usize * 7 + c * 3) % 11) as f64 / 10.0;
            }
            Request::Power {
                utilizations: Utilizations::from_values(values).unwrap(),
                config: FreqConfig::from_mhz(975, 3505),
            }
        })
        .collect();

    // `max_requests: N` closes admission the instant the budget is
    // spent, so the tail of this pipeline is answered during the drain.
    let replies = client.pipeline(&requests).unwrap();
    assert_eq!(replies.len(), requests.len());
    for (i, reply) in replies.iter().enumerate() {
        assert!(reply.is_ok(), "request {i}: {reply:?}");
    }
    // Replies are correct per-request, not just well-formed: each one
    // equals the direct model prediction for its own utilizations.
    let model = fitted_model();
    for (request, reply) in requests.iter().zip(&replies) {
        let Request::Power {
            utilizations,
            config,
        } = request
        else {
            unreachable!()
        };
        let watts = model.predict(utilizations, *config).unwrap();
        assert_eq!(reply, &Reply::Ok(Response::Power { watts }));
    }

    drop(client);
    let (served_engine, stats) = handle.join();
    assert_eq!(stats.served, N, "exactly N served: no loss, no duplication");
    assert_eq!(stats.shed, 0);
    assert_eq!(served_engine.stats().requests, N);
}

/// A connection whose bytes trickle through the chaos proxy in 7-byte
/// slices still gets byte-identical replies: framing is independent of
/// how the kernel splits reads.
#[test]
fn chaos_proxy_trickled_bytes_round_trip_byte_identically() {
    use gpm::serve::test_support::{ChaosMode, ChaosProxy};
    let batch = mixed_batch();
    let mut oracle_engine = engine();
    let oracle = serialize(&oracle_engine.process_batch(&batch));

    let handle = ServerHandle::bind(engine(), ServerConfig::default(), "127.0.0.1:0").unwrap();
    let proxy = ChaosProxy::spawn(
        handle.local_addr().unwrap(),
        ChaosMode::DelayBytes {
            chunk: 7,
            delay: Duration::from_millis(1),
        },
    );
    let mut client = TcpClient::connect(proxy.addr()).unwrap();
    let replies = client.pipeline(&batch).unwrap();
    assert_eq!(
        serialize(&replies),
        oracle,
        "trickled delivery changed the replies"
    );
    drop(client);
    drop(proxy);
    let (_, stats) = handle.shutdown();
    assert_eq!(stats.served, batch.len() as u64);
    assert_eq!(stats.shed, 0);
}

/// A connection that goes silent mid-frame is reaped after the idle
/// timeout instead of holding its shard's resources forever — and the
/// server keeps serving newcomers afterwards.
#[test]
fn idle_connections_are_reaped_after_the_timeout() {
    let config = ServerConfig {
        idle_timeout_ms: 100,
        ..ServerConfig::default()
    };
    let handle = ServerHandle::bind(engine(), config, "127.0.0.1:0").unwrap();
    let addr = handle.local_addr().unwrap();

    // Two bytes of a length prefix, then silence.
    let mut loris = TcpStream::connect(addr).unwrap();
    loris.set_nodelay(true).unwrap();
    loris.write_all(&[0, 0]).unwrap();
    loris
        .set_read_timeout(Some(Duration::from_secs(30)))
        .unwrap();
    let mut buf = [0u8; 1];
    match loris.read(&mut buf) {
        Ok(0) => {}                                                     // clean FIN
        Err(e) if e.kind() == std::io::ErrorKind::ConnectionReset => {} // abrupt close
        other => panic!("expected the server to reap the idle connection, got {other:?}"),
    }

    // The reap removed one connection, not the listener.
    let mut client = TcpClient::connect(addr).unwrap();
    let reply = client
        .call(&Request::Power {
            utilizations: utils(),
            config: FreqConfig::from_mhz(975, 3505),
        })
        .unwrap();
    assert!(reply.is_ok(), "{reply:?}");
    drop(client);
    let (_, stats) = handle.shutdown();
    assert_eq!(stats.served, 1);
}

/// The chaos proxy severs the stream two bytes into a request payload;
/// the server must shrug the torn connection off and keep answering
/// direct clients.
#[test]
fn mid_frame_reset_through_the_proxy_leaves_the_server_healthy() {
    use gpm::serve::test_support::{ChaosMode, ChaosProxy};
    let handle = ServerHandle::bind(engine(), ServerConfig::default(), "127.0.0.1:0").unwrap();
    let addr = handle.local_addr().unwrap();
    // Cut after 6 client bytes: the 4-byte prefix plus 2 payload bytes.
    let proxy = ChaosProxy::spawn(addr, ChaosMode::ResetAfter { bytes: 6 });

    let request = Request::Power {
        utilizations: utils(),
        config: FreqConfig::from_mhz(975, 3505),
    };
    let payload = gpm::serve::proto::encode_request(1, &request);
    let mut doomed = TcpStream::connect(proxy.addr()).unwrap();
    doomed.set_nodelay(true).unwrap();
    let _ = doomed.write_all(&(payload.len() as u32).to_be_bytes());
    let _ = doomed.write_all(payload.as_bytes());
    doomed
        .set_read_timeout(Some(Duration::from_secs(30)))
        .unwrap();
    let mut buf = [0u8; 4];
    assert!(
        matches!(doomed.read(&mut buf), Ok(0) | Err(_)),
        "the severed connection must not produce a reply"
    );
    drop(doomed);
    drop(proxy);

    let mut client = TcpClient::connect(addr).unwrap();
    let replies = client
        .pipeline(&(0..4).map(|_| request.clone()).collect::<Vec<_>>())
        .unwrap();
    assert!(replies.iter().all(Reply::is_ok), "{replies:?}");
    drop(client);
    let (_, stats) = handle.shutdown();
    assert!(stats.served >= 4, "{stats:?}");
}

/// With a 1 ms deadline budget, a pipelined burst of governor-backed
/// requests (which serialize through the engine thread) cannot all be
/// answered in time: the overrun ones get a typed `DeadlineExceeded`
/// instead of burning compute on replies nobody is waiting for.
#[test]
fn requests_past_their_deadline_budget_get_a_typed_reply() {
    const N: usize = 32;
    // The coalescing window is far longer than the 1 ms budget and the
    // batch cap exceeds the burst, so the whole burst sits in the queue
    // past its deadline — expiry cannot depend on machine speed.
    let config = ServerConfig {
        request_deadline_ms: 1,
        coalesce_us: 50_000,
        batch_max: 64,
        queue_depth: 256,
        conn_inflight: 256,
        ..ServerConfig::default()
    };
    let handle = ServerHandle::bind(engine(), config, "127.0.0.1:0").unwrap();

    // Pure requests only: deadlines are enforced on the coalescing
    // queue, while `BestConfig` rides the governor thread instead. The
    // burst goes out in a single write so every poll wake-up decodes at
    // least one frame — a wake-up that decodes nothing reads as a quiet
    // stream and would flush the batch before the budget elapses.
    let kernels = ["GEMM", "LBM", "BLCKSC", "SRAD_1"];
    let mut wire = Vec::new();
    for i in 0..N {
        let request = Request::Energy {
            kernel: kernels[i % kernels.len()].to_string(),
            config: FreqConfig::from_mhz(975, 3505),
        };
        let payload = gpm::serve::proto::encode_request(i as u64, &request);
        wire.extend_from_slice(&(payload.len() as u32).to_be_bytes());
        wire.extend_from_slice(payload.as_bytes());
    }
    let mut sock = TcpStream::connect(handle.local_addr().unwrap()).unwrap();
    sock.set_nodelay(true).unwrap();
    sock.write_all(&wire).unwrap();
    sock.set_read_timeout(Some(Duration::from_secs(30)))
        .unwrap();

    let mut replies = Vec::with_capacity(N);
    for _ in 0..N {
        let mut prefix = [0u8; 4];
        sock.read_exact(&mut prefix).unwrap();
        let mut payload = vec![0u8; u32::from_be_bytes(prefix) as usize];
        sock.read_exact(&mut payload).unwrap();
        let (_, reply) =
            gpm::serve::proto::decode_reply(std::str::from_utf8(&payload).unwrap()).unwrap();
        replies.push(reply);
    }
    let exceeded = replies
        .iter()
        .filter(|r| matches!(r, Reply::DeadlineExceeded { budget_ms: 1 }))
        .count();
    assert!(
        exceeded > 0,
        "a 1 ms budget must expire part of the burst: {replies:?}"
    );
    for reply in &replies {
        assert!(
            matches!(reply, Reply::Ok(_) | Reply::DeadlineExceeded { .. }),
            "unexpected reply kind: {reply:?}"
        );
    }
    drop(sock);
    let (_, stats) = handle.shutdown();
    assert_eq!(
        stats.served, N as u64,
        "expired requests still count as answered"
    );
}

/// The reactor reports its activity through gpm-obs counters.
#[test]
fn reactor_activity_reaches_an_installed_recorder() {
    let recorder = gpm::obs::Recorder::new();
    // Another test's recorder may already be installed (tests share the
    // process); tolerate that by only asserting when we own the slot.
    if gpm::obs::install(&recorder).is_some() {
        return;
    }

    let handle = ServerHandle::bind(engine(), ServerConfig::default(), "127.0.0.1:0").unwrap();
    let mut client = TcpClient::connect(handle.local_addr().unwrap()).unwrap();
    let n = 12u64;
    for _ in 0..n {
        let reply = client
            .call(&Request::Power {
                utilizations: utils(),
                config: FreqConfig::from_mhz(975, 3505),
            })
            .unwrap();
        assert!(reply.is_ok(), "{reply:?}");
    }
    drop(client);
    let (_, stats) = handle.shutdown();
    assert_eq!(stats.served, n);

    gpm::obs::uninstall();
    let trace = recorder.snapshot();
    let counter = |name: &str| trace.metrics.counters.get(name).copied().unwrap_or(0);
    // `>=` everywhere: other tests in this binary may have run
    // concurrently while the recorder was installed.
    assert!(counter("serve.reactor.accepts") >= 1, "{:?}", trace.metrics);
    assert!(counter("serve.connections") >= 1, "{:?}", trace.metrics);
    assert!(counter("serve.requests") >= n, "{:?}", trace.metrics);
}
