//! Golden-trace conformance suite: the observability capstone.
//!
//! A small deterministic pipeline (Tesla K40c, fixed seed: campaign →
//! fit → cross-validation → governed launches) runs with a recorder
//! installed; its trace is *normalized* (span tree sorted by the
//! deterministic order keys, ids and wall-clock dropped, volatile
//! pool metrics nulled) and compared structurally against a committed
//! fixture. Silent behavior changes — a phase that stops emitting
//! spans, an estimator that takes a different number of iterations, a
//! governor that profiles twice — fail here.
//!
//! Regenerate after an *intentional* behavior change with
//! `GPM_UPDATE_GOLDEN=1 cargo test --test trace_conformance`.

use gpm::core::{cross_validate, Estimator, EstimatorConfig};
use gpm::dvfs::{Governor, Objective};
use gpm::obs::{compare, normalize, NormalizeOptions, Recorder, Trace};
use gpm::prelude::*;
use std::fs;
use std::path::PathBuf;
use std::sync::Mutex;

/// Serializes the tests in this binary: they install a process-global
/// recorder and pin the process-global worker count.
static PIPELINE_LOCK: Mutex<()> = Mutex::new(());

fn golden_path() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/golden/pipeline_trace.json")
}

/// Runs the small deterministic pipeline under a fresh recorder and
/// returns its raw trace. Everything downstream of the fixed seed is
/// deterministic at any worker count: measurements are sequential on
/// the one simulated device, and the parallel stages are
/// order-preserving.
fn traced_pipeline() -> Trace {
    let recorder = Recorder::new();
    let previous = gpm::obs::install(&recorder);
    assert!(previous.is_none(), "another recorder was active");

    let spec = gpm::spec::devices::tesla_k40c();
    let mut gpu = SimulatedGpu::new(spec.clone(), 7);
    let suite = microbenchmark_suite(&spec);
    let training = gpm::profiler::Profiler::with_repeats(&mut gpu, 1)
        .profile_suite(&suite)
        .expect("campaign succeeds");

    let (model, report) = Estimator::new()
        .fit_with_report(&training)
        .expect("fit succeeds");
    assert!(report.iterations > 0);

    let cv = cross_validate(&training, &EstimatorConfig::default(), 3).expect("cv succeeds");
    assert_eq!(cv.folds, 3);

    let apps = validation_suite(&spec);
    let mut governor = Governor::new(&mut gpu, model, Objective::MinEnergy);
    for _ in 0..2 {
        governor.run_kernel(&apps[0]).expect("governed launch");
    }

    gpm::obs::uninstall();
    recorder.snapshot()
}

fn normalized_pipeline_json() -> String {
    gpm::json::write(&normalize(&traced_pipeline(), &NormalizeOptions::default()))
}

#[test]
fn pipeline_trace_matches_the_committed_golden() {
    let _guard = PIPELINE_LOCK.lock().unwrap();
    // Ambient worker count (GPM_THREADS in the CI matrix) — the golden
    // must hold at every thread count.
    let actual_json = normalized_pipeline_json();
    let path = golden_path();
    if std::env::var("GPM_UPDATE_GOLDEN").is_ok() {
        fs::write(&path, &actual_json).expect("write golden trace");
        return;
    }
    let golden_json = fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!(
            "missing fixture {} ({e}); run with GPM_UPDATE_GOLDEN=1",
            path.display()
        )
    });
    let golden = gpm::json::parse(&golden_json).expect("golden parses");
    let actual = gpm::json::parse(&actual_json).expect("actual parses");
    let diffs = compare(&golden, &actual, 1e-9);
    assert!(
        diffs.is_empty(),
        "normalized trace drifted from the golden ({} diffs):\n{}",
        diffs.len(),
        diffs
            .iter()
            .map(|d| format!("  {d}"))
            .collect::<Vec<_>>()
            .join("\n")
    );
}

#[test]
fn normalized_trace_is_bit_identical_at_any_thread_count() {
    let _guard = PIPELINE_LOCK.lock().unwrap();
    let mut normalized = Vec::new();
    for threads in [1usize, 4, 8] {
        gpm::par::set_threads(Some(threads));
        normalized.push((threads, normalized_pipeline_json()));
    }
    gpm::par::set_threads(None);
    let (_, reference) = &normalized[0];
    for (threads, json) in &normalized[1..] {
        assert_eq!(
            json, reference,
            "normalized trace at {threads} threads differs from the single-threaded run"
        );
    }
}

#[test]
fn every_pipeline_phase_appears_in_the_trace() {
    let _guard = PIPELINE_LOCK.lock().unwrap();
    let trace = traced_pipeline();
    for phase in [
        "profiler.campaign",
        "profiler.events",
        "profiler.config",
        "estimator.fit",
        "estimator.bootstrap",
        "estimator.iteration",
        "crossval",
        "crossval.fold",
        "profiler.profile_app",
        "governor.kernel",
    ] {
        assert!(
            !trace.spans_named(phase).is_empty(),
            "no `{phase}` span in the pipeline trace"
        );
    }
    // One decision span per governed launch, ordered by launch index.
    let launches = trace.spans_named("governor.kernel");
    assert_eq!(launches.len(), 2);
    let mut orders: Vec<u64> = launches.iter().map(|s| s.order).collect();
    orders.sort_unstable();
    assert_eq!(orders, vec![0, 1]);
    // The counter set covers every instrumented subsystem.
    for counter in [
        "profiler.power_measurements",
        "estimator.iterations",
        "estimator.coefficient_solves",
        "estimator.voltage_solves",
        "crossval.folds",
        "governor.launches",
        "par.calls",
    ] {
        assert!(
            trace.metrics.counters.get(counter).copied().unwrap_or(0) > 0,
            "counter `{counter}` missing from the pipeline trace"
        );
    }
}
